"""Wire-surface tests: endpoints, error model, budgets, admission.

Each test drives a real :class:`repro.server.ReproServer` over loopback
HTTP through the :mod:`repro.server.testing` harness -- the same path
``python -m repro serve`` exposes -- so the contracts asserted here
(400 with the shared diagnostic renderer, the 408 partial-result
contract, 429 + ``server.shed``) are the deployed ones, not unit-level
approximations.
"""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.rewriting.constraints import PAPER_DTD
from repro.server import SERVE_SCHEMA_VERSION, ServerConfig, running_server
from repro.tsl import print_query
from repro.workloads import query_q3, star_query, star_view, view_v1


def rewrite_body(**extra) -> dict:
    body = {"query": print_query(query_q3()),
            "views": {"V1": print_query(view_v1())},
            "dtd": PAPER_DTD}
    body.update(extra)
    return body


@pytest.fixture(scope="module")
def srv():
    """One shared server for the read-mostly endpoint tests."""
    with running_server(ServerConfig(port=0, workers=2),
                        metrics=MetricsRegistry()) as thread:
        yield thread


class TestPlumbing:
    def test_healthz_reports_liveness_and_pool(self, srv):
        status, body = srv.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["sessions"] >= 0
        assert body["in_flight"] >= 0

    def test_unknown_endpoint_is_404(self, srv):
        status, body = srv.get("/nope")
        assert status == 404
        assert "no such endpoint" in body["error"]["message"]

    def test_wrong_method_is_405(self, srv):
        assert srv.get("/rewrite")[0] == 405
        assert srv.post("/healthz", {})[0] == 405
        assert srv.post("/metrics", {})[0] == 405

    def test_metrics_exposition_reflects_traffic(self, srv):
        assert srv.post("/rewrite", rewrite_body())[0] == 200
        status, text = srv.get("/metrics")
        assert status == 200
        assert isinstance(text, str)  # Prometheus text, not JSON
        assert 'server_requests_total{' in text
        assert 'endpoint="POST /rewrite"' in text

    def test_oversized_body_is_413(self):
        config = ServerConfig(port=0, workers=1, max_body_bytes=64)
        with running_server(config) as small:
            status, body = small.post("/rewrite",
                                      {"pad": "x" * 1024})
            assert status == 413
            assert "too large" in body["error"]["message"]


class TestPersistentHealthz:
    """``/healthz`` grows a ``store`` section when ``cache_dir`` is set."""

    def test_store_section_tracks_persisted_state(self, tmp_path):
        config = ServerConfig(port=0, workers=1,
                              cache_dir=str(tmp_path / "store"))
        with running_server(config,
                            metrics=MetricsRegistry()) as persistent:
            status, body = persistent.get("/healthz")
            assert status == 200
            pool = body["pool"]
            assert pool["persistent"] is True
            assert pool["memo_entries_loaded"] == 0
            store = body["store"]
            # No snapshot or WAL yet: the version is unknown, not 0.
            assert store["store_version"] is None
            assert store["cache_shards"] == 8
            assert store["shard_entries"] == [0] * 8
            assert store["persisted_sessions"] == 0
            # Warm one session; shutdown flushes its memo to disk.
            assert persistent.post("/rewrite", rewrite_body())[0] == 200

        with running_server(config,
                            metrics=MetricsRegistry()) as restarted:
            status, body = restarted.get("/healthz")
            store = body["store"]
            assert store["persisted_sessions"] == 1
            assert store["persisted_memo_entries"] >= 1
            assert store["last_flush"] is not None
            # The reloaded memo serves the very first request as a hit.
            status, answer = restarted.post("/rewrite", rewrite_body())
            assert status == 200
            assert answer["memo"] == "hit"
            status, body = restarted.get("/healthz")
            assert body["pool"]["memo_entries_loaded"] >= 1

    def test_in_memory_server_has_no_store_section(self, srv):
        status, body = srv.get("/healthz")
        assert status == 200
        assert body["pool"]["persistent"] is False
        assert "store" not in body


class TestRewriteEndpoint:
    def test_rewrite_found_with_stats_and_memo_marker(self, srv):
        status, first = srv.post("/rewrite", rewrite_body())
        assert status == 200
        assert first["schema_version"] == SERVE_SCHEMA_VERSION
        assert first["rewritings"], "Q3 must rewrite over V1"
        assert all(r["flavor"] == "equivalent"
                   for r in first["rewritings"])
        assert first["truncated"] is False
        assert first["stats"]["candidates_tested"] >= 0

        status, second = srv.post("/rewrite", rewrite_body())
        assert status == 200
        assert second["memo"] == "hit"
        assert second["rewritings"] == first["rewritings"]

    def test_explain_endpoint_returns_decision_log(self, srv):
        status, body = srv.post("/explain", rewrite_body())
        assert status == 200
        assert body["found"] is True
        assert body["explanation"]["schema_version"] >= 1
        assert body["explanation"]["candidates"]

    def test_rewrite_with_explain_flag_inlines_the_log(self, srv):
        status, body = srv.post("/rewrite",
                                rewrite_body(explain=True))
        assert status == 200
        assert body["rewritings"]
        assert body["explanation"]["candidates"]


class TestErrorModel:
    def test_empty_body_is_400(self, srv):
        status, _body = srv.request("POST", "/rewrite")
        assert status == 400

    def test_malformed_json_is_400(self, srv):
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", srv.port,
                                          timeout=10)
        try:
            conn.request("POST", "/rewrite", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_malformed_tsl_renders_shared_diagnostics(self, srv):
        status, body = srv.post(
            "/rewrite", rewrite_body(query="<ans(X) a {}> :- <X b"))
        assert status == 400
        error = body["error"]
        # Rendered through repro.analysis.render_text: caret excerpt
        # plus machine-readable diagnostics with the lint syntax code.
        assert "^" in error["message"]
        assert error["diagnostics"]
        assert error["diagnostics"][0]["code"] == "TSL000"
        assert error["diagnostics"][0]["severity"] == "error"

    def test_malformed_view_names_the_view_file(self, srv):
        status, body = srv.post(
            "/rewrite",
            rewrite_body(views={"V1": "<xrow(X) row ok> :- garbage("}))
        assert status == 400
        assert body["error"]["diagnostics"][0]["file"] == "view:V1"

    def test_missing_fields_are_400(self, srv):
        assert srv.post("/rewrite", {"views": {}})[0] == 400
        assert srv.post("/rewrite",
                        {"query": print_query(query_q3())})[0] == 400

    def test_bad_dtd_is_400(self, srv):
        status, body = srv.post(
            "/rewrite", rewrite_body(dtd="<!ELEMENT broken"))
        assert status == 400
        assert "dtd" in body["error"]["message"].lower()

    def test_bad_field_types_are_400(self, srv):
        assert srv.post("/rewrite", rewrite_body(budget_ms="fast"))[0] \
            == 400
        assert srv.post("/rewrite",
                        rewrite_body(max_candidates=1.5))[0] == 400
        assert srv.post("/rewrite",
                        rewrite_body(max_candidates=-3))[0] == 400


class TestBudgets:
    """The 408 partial-result contract (ISSUE: budget exhaustion)."""

    def star_body(self, **extra) -> dict:
        body = {"query": print_query(star_query(3)),
                "views": {"V": print_query(star_view(3))}}
        body.update(extra)
        return body

    def test_deadline_exhaustion_is_408_with_partial_result(self, srv):
        status, body = srv.post(
            "/rewrite", self.star_body(budget_ms=0.001))
        assert status == 408
        assert body["truncated"] is True
        assert body["stop_reason"] in ("deadline", "steps", "budget")
        # Partial-result contract: the (possibly empty) sound prefix
        # still travels in the body.
        assert isinstance(body["rewritings"], list)
        assert body["schema_version"] == SERVE_SCHEMA_VERSION

    def test_step_exhaustion_is_408(self, srv):
        status, body = srv.post("/rewrite",
                                self.star_body(max_steps=2))
        assert status == 408
        assert body["truncated"] is True
        assert body["stop_reason"] == "steps"

    def test_max_candidates_truncation_is_200_not_408(self, srv):
        # Client-requested truncation is not a timeout: stop_reason
        # "max_candidates" stays on the success path.
        status, body = srv.post("/rewrite",
                                rewrite_body(max_candidates=1))
        assert status == 200
        assert len(body["rewritings"]) <= 1


class TestLoadShedding:
    """Admission control: beyond max_pending -> 429 + server.shed."""

    def test_burst_beyond_capacity_sheds_with_counter(self):
        registry = MetricsRegistry()
        config = ServerConfig(port=0, workers=1, max_pending=2)
        burst = 8
        request = {"query": print_query(star_query(3)),
                   "views": {"V": print_query(star_view(3))},
                   "budget_ms": 5000}
        statuses: list[int] = []
        lock = threading.Lock()
        with running_server(config, metrics=registry) as srv:
            barrier = threading.Barrier(burst)

            def client() -> None:
                barrier.wait()
                status, body = srv.post("/rewrite", request)
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=client)
                       for _ in range(burst)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            shed = srv.registry.snapshot()["counters"].get(
                "server.shed", 0)

        rejected = [s for s in statuses if s == 429]
        assert rejected, "burst never exceeded capacity"
        assert shed == len(rejected)
        # Admitted requests succeed or time out -- never error.
        assert all(s in (200, 408, 429) for s in statuses), statuses


class TestEvaluateEndpoint:
    def test_evaluate_inline_database(self, srv):
        from repro.oem.serialize import database_to_json
        from repro.workloads import figure3_database
        db = figure3_database()
        status, body = srv.post("/evaluate", {
            "query": "<ans(C) res {}> :- <P person C>@db",
            "database": database_to_json(db)})
        assert status == 200
        assert body["roots"] >= 1
        assert body["objects"] >= body["roots"]
        assert body["answer"]["roots"]

    def test_evaluate_rejects_bad_database(self, srv):
        status, body = srv.post("/evaluate", {
            "query": "<ans(C) res {}> :- <P person C>@db",
            "database": {"bogus": True}})
        assert status == 400
        assert "database" in body["error"]["message"]

    def test_evaluate_missing_database_is_400(self, srv):
        status, _ = srv.post("/evaluate",
                             {"query": "<ans(C) res {}> :- <P person C>@db"})
        assert status == 400
