"""benchmarks/run_all.py: failure handling around --json / --record.

Regression (ISSUE satellite): a raising bench series used to abort the
whole run *after* other experiments had burned their time, and a
``--record`` snapshot could be written with the series silently
missing -- poisoning every later ``compare.py`` trajectory diff.  Now a
failed series is marked ``failed`` in the ``--json`` document (which is
still written, as a diagnostic artifact), ``--record`` refuses to write
a snapshot, and the process exits nonzero.
"""

import importlib.util
import json
import types
from pathlib import Path

import pytest

RUN_ALL = Path(__file__).parent.parent / "benchmarks" / "run_all.py"


@pytest.fixture
def run_all(monkeypatch):
    """The run_all module, loaded fresh with importable bench deps."""
    monkeypatch.syspath_prepend(str(RUN_ALL.parent))
    spec = importlib.util.spec_from_file_location("run_all_under_test",
                                                  RUN_ALL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def stub_experiment(rows=None, error=None):
    """A fake bench module: fixed rows, or a deterministic crash."""
    module = types.ModuleType("bench_stub")
    if error is not None:
        def run_experiment():
            raise error
    else:
        def run_experiment():
            return rows

    def print_table(table_rows):
        for row in table_rows:
            print(row)

    module.run_experiment = run_experiment
    module.print_table = print_table
    return module


@pytest.fixture
def experiments(run_all, monkeypatch):
    good = stub_experiment(rows=[{"scenario": "ok", "seconds": 0.1}])
    bad = stub_experiment(error=TypeError("boom"))
    monkeypatch.setattr(run_all, "EXPERIMENTS", {
        "good": ("a passing series", good),
        "bad": ("a crashing series", bad),
    })
    return run_all


class TestFailureHandling:
    def test_all_green_records_a_snapshot(self, run_all, monkeypatch,
                                          tmp_path, capsys):
        good = stub_experiment(rows=[{"scenario": "ok", "seconds": 0.1}])
        monkeypatch.setattr(run_all, "EXPERIMENTS",
                            {"good": ("a passing series", good)})
        run_all.main(["--record", str(tmp_path)])
        snapshots = list(tmp_path.glob("BENCH_*.json"))
        assert len(snapshots) == 1
        payload = json.loads(snapshots[0].read_text())
        assert payload["schema_version"] == run_all.SCHEMA_VERSION
        assert payload["benchmarks"][0]["rows"]

    def test_failed_series_exits_nonzero(self, experiments, capsys):
        with pytest.raises(SystemExit) as excinfo:
            experiments.main([])
        assert "bad" in str(excinfo.value)
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "TypeError: boom" in out

    def test_failure_does_not_abort_later_series(self, run_all,
                                                 monkeypatch, capsys):
        # The crash comes first; the good series must still run.
        good = stub_experiment(rows=[{"scenario": "ok", "seconds": 0.1}])
        bad = stub_experiment(error=RuntimeError("early"))
        monkeypatch.setattr(run_all, "EXPERIMENTS", {
            "bad": ("a crashing series", bad),
            "good": ("a passing series", good),
        })
        with pytest.raises(SystemExit):
            run_all.main([])
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "{'scenario': 'ok'" in out

    def test_json_document_marks_the_failed_row(self, experiments,
                                                tmp_path, capsys):
        target = tmp_path / "results.json"
        with pytest.raises(SystemExit):
            experiments.main(["--json", str(target)])
        payload = json.loads(target.read_text())
        by_name = {row["name"]: row for row in payload["benchmarks"]}
        assert by_name["bad"]["failed"] is True
        assert "TypeError: boom" in by_name["bad"]["error"]
        assert by_name["bad"]["rows"] == []
        assert "failed" not in by_name["good"]

    def test_record_refuses_a_snapshot_with_failures(self, experiments,
                                                     tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            experiments.main(["--record", str(tmp_path)])
        assert "not recording" in str(excinfo.value)
        assert not list(tmp_path.glob("BENCH_*.json"))
