"""Label-overlap maintenance: statement_labels, patch vs invalidate."""

from repro.repository.cache import QueryCache
from repro.rewriting.constraints import PAPER_DTD, parse_dtd
from repro.storage.maintenance import (UpdateDelta, may_overlap,
                                       statement_labels)
from repro.tsl.evaluator import evaluate
from repro.tsl.parser import parse_query
from repro.workloads import figure3_database

CONSTANT = ("<ans(P) pub {<B booktitle 'SIGMOD'>}> :- "
            "<P pub {<B booktitle 'SIGMOD'>}>@db")
WILDCARD = "<rows(P) rec {<T L V>}> :- <P pub {<T L V>}>@db"


class TestStatementLabels:
    def test_all_constant_body_yields_its_step_labels(self):
        assert statement_labels(parse_query(CONSTANT)) \
            == frozenset({"pub", "booktitle"})

    def test_label_variable_means_unknowable(self):
        assert statement_labels(parse_query(WILDCARD)) is None

    def test_constraints_flow_into_the_chase(self):
        # A nested all-constant body under the paper DTD keeps exactly
        # its step labels; the chase adds no spurious ones.
        constraints = parse_dtd(PAPER_DTD, source="db")
        query = parse_query(
            "<ans(P) rec V> :- <P p {<N name {<L last V>}>}>@db")
        assert statement_labels(query, constraints) \
            == frozenset({"p", "name", "last"})

    def test_contradictory_body_is_never_affected(self):
        # `phone` is functional under the DTD (one per person), so
        # demanding two distinct values contradicts: the answer is
        # empty forever and no update overlaps.
        constraints = parse_dtd(PAPER_DTD, source="db")
        query = parse_query("<ans(P) rec 1> :- "
                            "<P p {<X phone 1>}>@db AND "
                            "<P p {<Y phone 2>}>@db")
        assert statement_labels(query, constraints) == frozenset()


class TestMayOverlap:
    def test_unknown_labels_always_overlap(self):
        assert may_overlap(None, frozenset({"anything"}))
        assert may_overlap(None, frozenset())

    def test_disjoint_sets_do_not_overlap(self):
        assert not may_overlap(frozenset({"pub"}), frozenset({"person"}))
        assert may_overlap(frozenset({"pub", "year"}), frozenset({"year"}))

    def test_empty_labels_never_overlap(self):
        assert not may_overlap(frozenset(), frozenset({"anything"}))


class TestUpdateDelta:
    def test_accumulates_raw_atoms(self):
        delta = UpdateDelta()
        assert not delta
        delta.touch("pub", 1997)
        delta.touch("pub")
        assert delta
        assert delta.ops == 2
        assert delta.frozen() == frozenset({"pub", 1997})
        # Raw atoms, not strings: an int label must stay an int so the
        # overlap test compares like with like.
        assert 1997 in delta.frozen() and "1997" not in delta.frozen()


class TestCacheApplyUpdate:
    def fill(self, version=1):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        for text in (CONSTANT, WILDCARD):
            query = parse_query(text)
            cache.insert(query, evaluate(query, db), version)
        return cache

    def test_disjoint_update_patches_constant_entry_only(self):
        cache = self.fill()
        outcome = cache.apply_update(frozenset({"person"}), 2,
                                     from_version=1)
        # The constant-label entry survives retagged; the wildcard
        # entry (label variable) is conservatively invalidated.
        assert outcome == {"patched": 1, "invalidated": 1}
        assert cache.lookup(parse_query(CONSTANT), 2) is not None
        assert cache.stats.patches == 1

    def test_overlapping_update_invalidates(self):
        cache = self.fill()
        outcome = cache.apply_update(frozenset({"booktitle"}), 2,
                                     from_version=1)
        assert outcome == {"patched": 0, "invalidated": 2}
        assert len(cache) == 0

    def test_from_version_guard_drops_already_stale_entries(self):
        # An entry cached at version 1 must not be retagged by the
        # 2 -> 3 delta, even if that delta is disjoint: it may have
        # missed the 1 -> 2 delta entirely.
        db = figure3_database()
        cache = QueryCache(capacity=8)
        query = parse_query(CONSTANT)
        cache.insert(query, evaluate(query, db), 1)
        outcome = cache.apply_update(frozenset({"person"}), 3,
                                     from_version=2)
        assert outcome == {"patched": 0, "invalidated": 1}

    def test_labels_are_computed_once_and_memoized(self):
        cache = self.fill()
        cache.apply_update(frozenset({"person"}), 2, from_version=1)
        entry = next(iter(cache.entries.values()))
        assert entry.labels_known
        assert entry.labels == frozenset({"pub", "booktitle"})
