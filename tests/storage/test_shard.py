"""HRW routing and the sharded query cache facade."""

from collections import Counter

from repro.storage import ShardedQueryCache, shard_for
from repro.rewriting.canon import query_key
from repro.tsl.evaluator import evaluate
from repro.tsl.parser import parse_query
from repro.workloads import figure3_database

SIGMOD = ("<ans(P) pub {<B booktitle 'SIGMOD'>}> :- "
          "<P pub {<B booktitle 'SIGMOD'>}>@db")


def sigmod_query():
    return parse_query(SIGMOD)


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 8, 16):
            for key in ("a", "b", "0f3e", "x" * 64):
                owner = shard_for(key, shards)
                assert owner == shard_for(key, shards)
                assert 0 <= owner < shards

    def test_spreads_keys_across_shards(self):
        owners = Counter(shard_for(f"key-{i}", 8) for i in range(400))
        assert len(owners) == 8
        assert max(owners.values()) < 3 * min(owners.values())

    def test_single_shard_short_circuits(self):
        assert shard_for("anything", 1) == 0


class TestShardedQueryCache:
    def test_capacity_split_with_remainder_to_low_shards(self):
        cache = ShardedQueryCache(shards=3, capacity=10)
        assert [shard.capacity for shard in cache.shards] == [4, 3, 3]

    def test_insert_routes_to_owner_and_exact_lookup_hits(self):
        db = figure3_database()
        query = sigmod_query()
        cache = ShardedQueryCache(shards=4, capacity=16)
        answer = evaluate(query, db)
        entry = cache.insert(query, answer, version=1)
        key = query_key(query)
        owner = shard_for(key, 4)
        assert len(cache.shards[owner]) == 1
        assert cache.has_key(key)
        assert cache.lookup(query, version=1) is answer
        assert entry.key == key

    def test_rewrite_lookup_consults_other_shards(self):
        db = figure3_database()
        cache = ShardedQueryCache(shards=4, capacity=16)
        view = parse_query(
            "<v(P) pub {<c(P,L,W) L W>}> :- <P pub {<X L W>}>@db")
        cache.insert(view, evaluate(view, db), version=1)
        probe = parse_query(
            "<ans(P) pub {<c2(P) title T>}> :- <P pub {<X title T>}>@db")
        answer = cache.lookup(probe, version=1)
        assert answer is not None
        assert answer.stats()["objects"] > 0

    def test_apply_update_fans_out(self):
        db = figure3_database()
        cache = ShardedQueryCache(shards=4, capacity=16)
        query = sigmod_query()
        cache.insert(query, evaluate(query, db), version=1)
        outcome = cache.apply_update(frozenset({"booktitle"}), 2,
                                     from_version=1)
        assert outcome == {"patched": 0, "invalidated": 1}
        assert len(cache) == 0
        cache.insert(query, evaluate(query, db), version=2)
        outcome = cache.apply_update(frozenset({"unrelated"}), 3,
                                     from_version=2)
        assert outcome == {"patched": 1, "invalidated": 0}
        assert cache.lookup(query, version=3) is not None

    def test_stats_aggregate_and_per_shard_breakdown(self):
        db = figure3_database()
        cache = ShardedQueryCache(shards=2, capacity=8)
        query = sigmod_query()
        cache.insert(query, evaluate(query, db), version=1)
        cache.lookup(query, version=1)
        stats = cache.stats()
        assert stats["shards"] == 2
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert sum(stats["entries_per_shard"]) == 1
        assert len(stats["entries_per_shard"]) == 2

    def test_invalidate_clears_every_shard(self):
        db = figure3_database()
        cache = ShardedQueryCache(shards=4, capacity=16)
        for text in (SIGMOD,
                     "<ans2(P) rec {<T title V>}> :- "
                     "<P pub {<T title V>}>@db"):
            query = parse_query(text)
            cache.insert(query, evaluate(query, db), version=1)
        assert len(cache) == 2
        cache.invalidate()
        assert len(cache) == 0
