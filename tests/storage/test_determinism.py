"""Byte stability: same logical state, same bytes, every time.

Satellite of the persistence PR: snapshots iterate oids in sorted
order and every persisted document sorts its keys and content, so
``repro db stats``, store snapshots, and cache shard files can be
diffed (and content-addressed) across runs and across machines.
"""

import json
import random

from repro.cli import main
from repro.oem import dumps
from repro.oem.model import OemDatabase
from repro.oem.serialize import database_to_json
from repro.storage import (DurableStore, ShardedCacheStore,
                           ShardedQueryCache, StorageLayout)
from repro.tsl.evaluator import evaluate
from repro.tsl.parser import parse_query
from repro.workloads import figure3_database, generate_bibliography


def shuffled_copy(db: OemDatabase, seed: int) -> OemDatabase:
    """The same logical database, built in a random insertion order."""
    rng = random.Random(seed)
    out = OemDatabase(db.name)
    oids = list(db.oids())
    rng.shuffle(oids)
    for oid in oids:
        if db.is_atomic(oid):
            out.add_atomic(oid, db.label(oid), db.atomic_value(oid))
        else:
            out.add_set(oid, db.label(oid))
    for oid in oids:
        children = list(db.children(oid))
        rng.shuffle(children)
        for child in children:
            out.add_child(oid, child)
    roots = list(db.roots)
    rng.shuffle(roots)
    for root in roots:
        out.add_root(root)
    return out


class TestSortedSerialization:
    def test_shuffled_construction_serializes_identically(self):
        db = generate_bibliography(30, seed=4)
        reference = json.dumps(database_to_json(db, sort_oids=True),
                               sort_keys=True)
        for seed in range(3):
            copy = shuffled_copy(db, seed)
            assert json.dumps(database_to_json(copy, sort_oids=True),
                              sort_keys=True) == reference

    def test_snapshot_bytes_independent_of_ingest_order(self, tmp_path):
        db = generate_bibliography(30, seed=4)
        snapshots = []
        for seed in range(2):
            root = tmp_path / f"store-{seed}"
            store = DurableStore.create(root, db.name)
            store.ingest(shuffled_copy(db, seed))
            store.compact()
            store.close()
            snapshots.append(StorageLayout(root).snapshot.read_bytes())
        assert snapshots[0] == snapshots[1]

    def test_recompaction_is_idempotent_on_bytes(self, tmp_path):
        root = tmp_path / "store"
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        store.compact()
        first = StorageLayout(root).snapshot.read_bytes()
        store.compact()
        store.close()
        assert StorageLayout(root).snapshot.read_bytes() == first


class TestCacheShardBytes:
    def test_save_load_save_reproduces_shard_files(self, tmp_path):
        db = figure3_database()
        query = parse_query(
            "<ans(P) pub {<B booktitle 'SIGMOD'>}> :- "
            "<P pub {<B booktitle 'SIGMOD'>}>@db")
        cache = ShardedQueryCache(shards=2, capacity=8)
        cache.insert(query, evaluate(query, db), 1)
        first = ShardedCacheStore(StorageLayout(tmp_path / "a"), 2)
        first.save(cache, 1)
        reloaded = ShardedQueryCache(shards=2, capacity=8)
        first.load(reloaded, 1)
        second = ShardedCacheStore(StorageLayout(tmp_path / "b"), 2)
        second.save(reloaded, 1)
        for index in range(2):
            assert first.layout.shard_path(index).read_bytes() \
                == second.layout.shard_path(index).read_bytes()


class TestDbStatsCli:
    def test_db_stats_output_is_byte_stable(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        db_file = tmp_path / "db.json"
        db_file.write_text(dumps(figure3_database()))
        assert main(["db", "init", root]) == 0
        assert main(["db", "ingest", root, "--db", str(db_file)]) == 0
        capsys.readouterr()
        assert main(["db", "stats", root]) == 0
        first = capsys.readouterr().out
        assert main(["db", "stats", root]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["store"]["objects"] == 7
        assert payload["store"]["version"] > 0
        assert payload["cache"]["shards"] == 8
        assert payload["sessions"] == {"sessions": 0, "entries": {}}

    def test_db_stats_stable_across_flush_and_compact(self, tmp_path,
                                                      capsys):
        root = str(tmp_path / "store")
        db_file = tmp_path / "db.json"
        db_file.write_text(dumps(figure3_database()))
        main(["db", "init", root])
        main(["db", "ingest", root, "--db", str(db_file)])
        main(["db", "flush", root])
        capsys.readouterr()
        main(["db", "stats", root])
        before = json.loads(capsys.readouterr().out)
        main(["db", "compact", root])
        capsys.readouterr()
        main(["db", "stats", root])
        after = json.loads(capsys.readouterr().out)
        # Version and contents survive compaction; only the WAL counter
        # and snapshot flag may change.
        assert after["store"]["version"] == before["store"]["version"]
        assert after["store"]["objects"] == before["store"]["objects"]
        assert after["store"]["wal_records"] == 0
