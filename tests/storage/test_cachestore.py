"""Cache-shard persistence: exact round trips, forgiving loads."""

import json

import pytest

from repro.oem.serialize import database_to_json
from repro.repository.cache import QueryCache
from repro.rewriting.canon import query_key
from repro.storage import ShardedCacheStore, ShardedQueryCache, StorageLayout
from repro.storage.cachestore import CacheStore
from repro.tsl.evaluator import evaluate
from repro.tsl.parser import parse_query
from repro.workloads import figure3_database

QUERIES = (
    "<ans(P) pub {<B booktitle 'SIGMOD'>}> :- "
    "<P pub {<B booktitle 'SIGMOD'>}>@db",
    "<rows(P) rec {<T L V>}> :- <P pub {<T L V>}>@db",
    "<people(P) rec N> :- <P person {<X name N>}>@db",
)


def canonical(db) -> str:
    return json.dumps(database_to_json(db, sort_oids=True), sort_keys=True)


def filled_cache(shards: int = 2, version: int = 3) -> ShardedQueryCache:
    db = figure3_database()
    cache = ShardedQueryCache(shards=shards, capacity=16)
    for text in QUERIES:
        query = parse_query(text)
        cache.insert(query, evaluate(query, db), version)
    return cache


class TestSingleShard:
    def test_round_trip_preserves_entries_and_lru_order(self, tmp_path):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        for text in QUERIES:
            query = parse_query(text)
            cache.insert(query, evaluate(query, db), 1)
        cache.lookup(parse_query(QUERIES[0]), 1)  # reorder the LRU
        store = CacheStore(tmp_path / "shard.json")
        store.save(cache, store_version=1)
        restored = QueryCache(capacity=8)
        assert store.load(restored, store_version=1) \
            == {"entries": 3, "dropped": 0}
        assert [e.key for e in restored.snapshot_entries()] \
            == [e.key for e in cache.snapshot_entries()]
        for before, after in zip(cache.snapshot_entries(),
                                 restored.snapshot_entries()):
            assert canonical(before.answer) == canonical(after.answer)
            assert before.statement == after.statement
            assert before.hits == after.hits

    def test_restored_counter_resumes_past_loaded_names(self, tmp_path):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        query = parse_query(QUERIES[0])
        cache.insert(query, evaluate(query, db), 1)
        store = CacheStore(tmp_path / "shard.json")
        store.save(cache, store_version=1)
        restored = QueryCache(capacity=8)
        store.load(restored, store_version=1)
        other = parse_query(QUERIES[1])
        entry = restored.insert(other, evaluate(other, db), 1)
        assert entry.name == "cached_2"

    def test_load_is_forgiving(self, tmp_path):
        path = tmp_path / "shard.json"
        fresh = QueryCache(capacity=8)
        # Absent file.
        assert CacheStore(path).load(fresh, 1) \
            == {"entries": 0, "dropped": 0}
        # Unparseable file.
        path.write_text("{nope")
        assert CacheStore(path).load(fresh, 1) \
            == {"entries": 0, "dropped": 0}
        # Wrong kind / schema.
        path.write_text(json.dumps({"kind": "other", "schema_version": 1}))
        assert CacheStore(path).load(fresh, 1) \
            == {"entries": 0, "dropped": 0}
        assert len(fresh) == 0

    def test_wrong_store_version_drops_wholesale(self, tmp_path):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        query = parse_query(QUERIES[0])
        cache.insert(query, evaluate(query, db), 7)
        store = CacheStore(tmp_path / "shard.json")
        store.save(cache, store_version=7)
        fresh = QueryCache(capacity=8)
        assert store.load(fresh, store_version=8) \
            == {"entries": 0, "dropped": 1}
        assert len(fresh) == 0

    def test_wrong_shard_geometry_is_discarded(self, tmp_path):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        query = parse_query(QUERIES[0])
        cache.insert(query, evaluate(query, db), 1)
        path = tmp_path / "shard.json"
        CacheStore(path, shard=0, shards=2).save(cache, 1)
        fresh = QueryCache(capacity=8)
        assert CacheStore(path, shard=0, shards=4).load(fresh, 1) \
            == {"entries": 0, "dropped": 0}

    def test_restore_respects_capacity(self, tmp_path):
        db = figure3_database()
        cache = QueryCache(capacity=8)
        for text in QUERIES:
            query = parse_query(text)
            cache.insert(query, evaluate(query, db), 1)
        store = CacheStore(tmp_path / "shard.json")
        store.save(cache, 1)
        small = QueryCache(capacity=2)
        stats = store.load(small, 1)
        assert len(small) == 2
        assert stats == {"entries": 2, "dropped": 1}
        # The newest (LRU-tail) entries survive.
        survivors = {e.key for e in small.snapshot_entries()}
        originals = [e.key for e in cache.snapshot_entries()]
        assert survivors == set(originals[-2:])


class TestShardedStore:
    def test_round_trip_through_layout(self, tmp_path):
        layout = StorageLayout(tmp_path / "root")
        cache = filled_cache(shards=2)
        disk = ShardedCacheStore(layout, shards=2)
        saved = disk.save(cache, store_version=3)
        assert saved["entries"] == 3
        reloaded = ShardedQueryCache(shards=2, capacity=16)
        loaded = disk.load(reloaded, store_version=3)
        assert loaded == {"entries": 3, "dropped": 0}
        query = parse_query(QUERIES[0])
        assert reloaded.has_key(query_key(query))
        hit = reloaded.lookup(query, version=3)
        assert canonical(hit) == canonical(
            evaluate(query, figure3_database()))

    def test_shard_count_mismatch_raises(self, tmp_path):
        layout = StorageLayout(tmp_path / "root")
        disk = ShardedCacheStore(layout, shards=2)
        with pytest.raises(ValueError):
            disk.save(ShardedQueryCache(shards=4, capacity=16), 1)
        with pytest.raises(ValueError):
            disk.load(ShardedQueryCache(shards=4, capacity=16), 1)

    def test_entries_land_on_their_owning_shard_files(self, tmp_path):
        layout = StorageLayout(tmp_path / "root")
        cache = filled_cache(shards=2)
        ShardedCacheStore(layout, shards=2).save(cache, 3)
        for index, shard in enumerate(cache.shards):
            document = json.loads(layout.shard_path(index).read_text())
            assert document["shard"] == index
            assert len(document["entries"]) == len(shard)
