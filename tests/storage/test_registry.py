"""Session-memo persistence: warm restarts serve memo hits."""

import json

from repro.rewriting.canon import query_key
from repro.rewriting.session import RewriteSession
from repro.storage import SessionRegistry, StorageLayout
from repro.tsl.parser import parse_query
from repro.workloads import query_q3, view_v1


def fingerprint(result) -> set:
    return {(query_key(r.query), tuple(sorted(r.views_used)))
            for r in result.rewritings}


def warmed_session():
    session = RewriteSession({"V1": view_v1()}, None)
    outcome = session.rewrite(query_q3())
    assert outcome.rewritings
    return session, outcome


class TestRoundTrip:
    def test_reloaded_session_serves_a_memo_hit(self, tmp_path):
        session, outcome = warmed_session()
        registry = SessionRegistry(StorageLayout(tmp_path))
        saved = registry.save("cfg", session, store_version=4)
        assert saved["entries"] == 1
        fresh = RewriteSession({"V1": view_v1()}, None)
        loaded = registry.load_into("cfg", fresh, store_version=4)
        assert loaded == {"entries": 1, "dropped": 0}
        (_key, flags), _value = session.result_entries()[0]
        value = fresh.lookup_result(query_q3(), flags)
        assert value is not None
        warm, explanation = value
        assert fingerprint(warm) == fingerprint(outcome)
        # Compositions travel too -- they are what EXPLAIN/evaluation
        # downstream consume.
        assert all(r.composition for r in warm.rewritings)
        # The decision log does not persist; explain lookups recompute.
        assert explanation is None

    def test_reload_preserves_the_exact_match_guard(self, tmp_path):
        # The memo key is canonical, but lookup_result also demands the
        # stored query equal the probe exactly (the hash-collision
        # guard).  A reloaded entry must behave identically: the exact
        # spelling hits, an alpha-variant spelling is a sound miss that
        # recomputes.
        session, _outcome = warmed_session()
        registry = SessionRegistry(StorageLayout(tmp_path))
        registry.save("cfg", session, store_version=0)
        fresh = RewriteSession({"V1": view_v1()}, None)
        registry.load_into("cfg", fresh, store_version=0)
        (_key, flags), _value = session.result_entries()[0]
        renamed = parse_query(
            "<f(PP) stanford yes> :- <PP p {<XX YY leland>}>@db")
        assert query_key(renamed) == query_key(query_q3())
        assert fresh.lookup_result(query_q3(), flags) is not None
        assert fresh.lookup_result(renamed, flags) is None


class TestDiscards:
    def test_different_store_version_discards_wholesale(self, tmp_path):
        session, _outcome = warmed_session()
        registry = SessionRegistry(StorageLayout(tmp_path))
        registry.save("cfg", session, store_version=4)
        fresh = RewriteSession({"V1": view_v1()}, None)
        loaded = registry.load_into("cfg", fresh, store_version=5)
        assert loaded == {"entries": 0, "dropped": 1}

    def test_none_store_version_skips_the_check(self, tmp_path):
        session, _outcome = warmed_session()
        registry = SessionRegistry(StorageLayout(tmp_path))
        registry.save("cfg", session, store_version=4)
        fresh = RewriteSession({"V1": view_v1()}, None)
        assert registry.load_into("cfg", fresh)["entries"] == 1

    def test_missing_or_corrupt_document_is_silent(self, tmp_path):
        layout = StorageLayout(tmp_path)
        registry = SessionRegistry(layout)
        fresh = RewriteSession({"V1": view_v1()}, None)
        assert registry.load_into("absent", fresh) \
            == {"entries": 0, "dropped": 0}
        layout.sessions_dir.mkdir(parents=True)
        layout.session_path("bad").write_text("{nope")
        assert registry.load_into("bad", fresh) \
            == {"entries": 0, "dropped": 0}

    def test_config_key_mismatch_is_discarded(self, tmp_path):
        session, _outcome = warmed_session()
        layout = StorageLayout(tmp_path)
        registry = SessionRegistry(layout)
        registry.save("cfg", session, store_version=0)
        # A document renamed onto another config key must not warm it.
        document = layout.session_path("cfg").read_text()
        layout.session_path("other").write_text(document)
        fresh = RewriteSession({"V1": view_v1()}, None)
        assert registry.load_into("other", fresh, store_version=0) \
            == {"entries": 0, "dropped": 0}


class TestStats:
    def test_stats_count_entries_per_config(self, tmp_path):
        session, _outcome = warmed_session()
        registry = SessionRegistry(StorageLayout(tmp_path))
        assert registry.stats() == {"sessions": 0, "entries": {}}
        registry.save("cfg-a", session, store_version=0)
        registry.save("cfg-b", session, store_version=0)
        stats = registry.stats()
        assert stats["sessions"] == 2
        assert stats["entries"] == {"cfg-a": 1, "cfg-b": 1}

    def test_document_shape_is_schema_versioned(self, tmp_path):
        session, _outcome = warmed_session()
        layout = StorageLayout(tmp_path)
        SessionRegistry(layout).save("cfg", session, store_version=7)
        document = json.loads(layout.session_path("cfg").read_text())
        assert document["kind"] == "repro-session-memo"
        assert document["schema_version"] == 1
        assert document["store_version"] == 7
        assert document["config_key"] == "cfg"
