"""DurableStore: WAL + snapshot durability, crash windows, versioning."""

import json

import pytest

from repro.errors import StorageError
from repro.oem.serialize import database_to_json
from repro.storage import DurableStore, StorageLayout
from repro.storage.durable import current_store_version
from repro.workloads import figure3_database


def canonical(db) -> str:
    return json.dumps(database_to_json(db, sort_oids=True), sort_keys=True)


@pytest.fixture
def root(tmp_path):
    return tmp_path / "repo"


class TestLifecycle:
    def test_ingest_close_open_round_trip(self, root):
        store = DurableStore.create(root, "db")
        records = store.ingest(figure3_database())
        assert records > 0
        assert store.version == records
        store.close()
        reopened = DurableStore.open(root)
        assert canonical(reopened.db) == canonical(figure3_database())
        assert reopened.version == records
        reopened.close()

    def test_version_stable_across_compact_and_reopen(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        version = store.version
        store.compact()
        store.close()
        assert not StorageLayout(root).wal.exists()
        reopened = DurableStore.open(root)
        assert reopened.version == version
        assert canonical(reopened.db) == canonical(figure3_database())
        reopened.close()

    def test_mutations_after_reopen_append_to_wal(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        store.compact()
        store.close()
        reopened = DurableStore.open(root)
        reopened.add_root(reopened.add_atomic("extra", "noise", 1))
        version = reopened.version
        reopened.close()
        again = DurableStore.open(root)
        assert again.version == version
        assert canonical(again.db) == canonical(reopened.db)
        again.close()

    def test_create_refuses_initialized_root_without_force(self, root):
        DurableStore.create(root, "db").close()
        with pytest.raises(StorageError):
            DurableStore.create(root, "db")
        DurableStore.create(root, "db", force=True).close()

    def test_open_requires_manifest(self, root):
        with pytest.raises(StorageError):
            DurableStore.open(root)

    def test_context_manager_flushes(self, root):
        with DurableStore.create(root, "db") as store:
            store.ingest(figure3_database())
            version = store.version
        assert DurableStore.open(root).version == version


class TestCrashWindows:
    def test_torn_final_wal_record_is_dropped(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        version = store.version
        store.close()
        wal = StorageLayout(root).wal
        with open(wal, "a", encoding="utf-8") as handle:
            handle.write('{"op": "atomic", "oid": {"c"')  # torn append
        reopened = DurableStore.open(root)
        assert reopened.version == version
        reopened.close()

    def test_torn_middle_wal_record_raises(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        store.close()
        wal = StorageLayout(root).wal
        lines = wal.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[1] = '{"op": "atomic", "oid"\n'
        wal.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(StorageError):
            DurableStore.open(root)

    def test_replay_onto_snapshot_already_containing_records(self, root):
        # The compact() crash window: snapshot written, WAL not yet
        # truncated.  Replay re-applies records the snapshot already
        # holds; every add_* is idempotent, so the image converges.
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        version = store.version
        store.close()
        layout = StorageLayout(root)
        wal_bytes = layout.wal.read_bytes()
        reopened = DurableStore.open(root)
        reopened.compact()
        reopened.close()
        layout.wal.write_bytes(wal_bytes)  # simulate the crash window
        converged = DurableStore.open(root)
        assert canonical(converged.db) == canonical(figure3_database())
        converged.close()

    def test_snapshot_for_wrong_database_name_refused(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        store.compact()
        store.close()
        layout = StorageLayout(root)
        manifest = json.loads(layout.manifest.read_text())
        manifest["name"] = "other"
        layout.manifest.write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            DurableStore.open(root)


class TestKnobs:
    def test_autocompact_bounds_the_wal(self, root):
        store = DurableStore.create(root, "db", autocompact_ops=5)
        store.ingest(figure3_database())
        assert store.wal_records < 5
        assert StorageLayout(root).snapshot.exists()
        store.close()

    def test_current_store_version_matches_open(self, root):
        layout = StorageLayout(root)
        store = DurableStore.create(root, "db")
        assert current_store_version(layout) == 0
        store.ingest(figure3_database())
        store.close()
        assert current_store_version(layout) \
            == DurableStore.open(root).version

    def test_stats_are_deterministic(self, root):
        store = DurableStore.create(root, "db")
        store.ingest(figure3_database())
        first = store.stats()
        assert first == store.stats()
        assert first["objects"] == 7
        assert first["wal_records"] == store.wal_records
        store.close()
