"""Cross-subsystem integration tests: the full pipelines users would run.

Each test strings several subsystems together the way the examples do:
XML import -> constraints -> rewriting; mediator + repository; RPE
expansion -> rewriting -> evaluation; serialization round trips through
query answers.
"""

import pytest

from repro.logic.terms import Variable
from repro.oem import dumps, identical, loads
from repro.mediator import CapabilityView, Mediator, Source
from repro.repository import Repository
from repro.rewriting import (dtd_from_dataguide,
                             maximally_contained_rewritings, rewrite)
from repro.tsl import (evaluate, evaluate_program, expand_rpe_query,
                       parse_query)
from repro.workloads import generate_bibliography
from repro.xmlbridge import dtd_from_document, xml_to_oem

CATALOG = """<?xml version="1.0"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (product*)>
  <!ELEMENT product (name, price)>
  <!ELEMENT name CDATA>
  <!ELEMENT price CDATA>
]>
<catalog>
  <product><name>laptop</name><price>999</price></product>
  <product><name>mouse</name><price>19</price></product>
</catalog>
"""


class TestXmlToRewriting:
    def test_import_constrain_rewrite_evaluate(self):
        db = xml_to_oem(CATALOG)
        dtd = dtd_from_document(CATALOG)
        assert dtd.functional_child("product", "name")
        view = parse_query("""
            <page(R) listing {<row(P) row {<nm(P,N) name N>}>}> :-
                <R catalog {<P product {<X name N>}>}>@db
        """, name="site")
        query = parse_query("""
            <f(P) found N> :-
                <R catalog {<P product {<X name N>}>}>@db
        """)
        result = rewrite(query, {"site": view}, constraints=dtd,
                         total_only=True)
        assert len(result.rewritings) == 1
        site = evaluate(view, db, answer_name="site")
        direct = evaluate(query, db)
        via = evaluate(result.rewritings[0].query, {"site": site})
        assert identical(direct, via)


class TestMediatorPlusRepository:
    def test_mediator_answer_feeds_repository(self):
        source_db = generate_bibliography(40, seed=21, name="s1")
        capability = CapabilityView.from_text("dump", """
            <v(P) pub {<c(P,L,W) L W>}> :- <P pub {<X L W>}>@s1
        """)
        mediator = Mediator(
            sources={"s1": Source("s1", source_db, [capability])})
        fetched = mediator.answer(
            parse_query("<f(P) pub {<k(P,L,W) L W>}> :- "
                        "<P pub {<X L W>}>@s1"),
            answer_name="db")
        # The mediated answer becomes a repository; cached-query
        # rewriting then works over *mediated* data.
        repo = Repository.from_database(fetched)
        broad = parse_query(
            "<g(P) hit T> :- <P pub {<B booktitle sigmod>}>@db AND "
            "<P pub {<X title T>}>@db")
        repo.query(broad)
        second = repo.query_with_report(broad)
        assert second.method == "cache"


class TestRpeThroughRewriter:
    def test_union_of_expansions_rewrites_and_evaluates(self):
        from repro.oem import build_database, obj
        db = build_database("db", [
            obj("part", [obj("part", [obj("name", "bolt")]),
                         obj("name", "wheel")]),
        ])
        rules = expand_rpe_query("part.(part)*.name", Variable("V"),
                                 max_depth=3)
        direct = evaluate_program(rules, db)
        names = {r.value for r in direct.root_objects()}
        assert names == {"wheel", "bolt"}

        # The shortest expansion (part.name) is rewritable over a view
        # that exposes name objects with their oids.
        view = parse_query(
            "<v(P) row {<c(X) val N>}> :- <P part {<X name N>}>@db",
            name="V")
        def pattern_count(rule):
            return sum(1 for _ in rule.body[0].pattern.nested_patterns())

        shortest = min(rules, key=pattern_count)
        result = rewrite(shortest, {"V": view})
        assert len(result.rewritings) == 1


class TestSerializationOfAnswers:
    def test_answer_with_function_oids_round_trips(self):
        db = generate_bibliography(10, seed=5)
        query = parse_query(
            "<f(P) pub {<k(P,L,W) L W>}> :- <P pub {<X L W>}>@db")
        answer = evaluate(query, db)
        assert identical(answer, loads(dumps(answer)))

    def test_contained_rewriting_results_round_trip(self):
        db = generate_bibliography(15, seed=6)
        view = parse_query(
            "<v(P) pub {<c(P,L,W) L W>}> :- "
            "<P pub {<B booktitle sigmod>}>@db AND <P pub {<X L W>}>@db",
            name="V")
        query = parse_query(
            "<f(P) title T> :- <P pub {<X title T>}>@db")
        contained = maximally_contained_rewritings(query, {"V": view})
        assert contained.rewritings
        materialized = evaluate(view, db, answer_name="V")
        partial = evaluate(contained.rewritings[0].query,
                           {"V": materialized})
        assert identical(partial, loads(dumps(partial)))


class TestInstanceMinedConstraintsEndToEnd:
    def test_dataguide_constraints_travel_through_repository(self):
        from repro.workloads import generate_people, query_q7, view_v1
        db = generate_people(60, seed=9)
        mined = dtd_from_dataguide(db)
        repo = Repository.from_database(db, constraints=mined)
        repo.define_view("V1", view_v1())
        report = repo.query_with_report(query_q7())
        # The repository's rewriter uses the mined constraints, so (Q7)
        # is answered from the materialized (V1) without touching db.
        assert report.method == "views"
        assert identical(report.answer, evaluate(query_q7(), db))
