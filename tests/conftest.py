"""Shared fixtures: the paper's running examples, reusable databases.

Random-workload fixtures (``random_workload``, ``oracle_case``, ...)
come from :mod:`repro.oracle.fixtures`, shared with the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.oem import build_database, obj
from repro.oracle.fixtures import *  # noqa: F401,F403
from repro.tsl import parse_query
from repro.workloads import (figure3_database, generate_bibliography,
                             generate_people, people_dtd, view_v1)


@pytest.fixture
def fig3():
    """The Figure 3 bibliographic objects."""
    return figure3_database()


@pytest.fixture
def people_db():
    """A DTD-conforming person database (Section 3.3 shape)."""
    return generate_people(25, seed=7)


@pytest.fixture
def dtd():
    """The Section 3.3 DTD."""
    return people_dtd()


@pytest.fixture
def v1():
    """The paper's view (V1)."""
    return view_v1()


@pytest.fixture
def q3():
    return parse_query("<f(P) stanford yes> :- <P p {<X Y leland>}>@db")


@pytest.fixture
def q5():
    return parse_query(
        "<f(P) stanford yes> :- <P p {<X Y {<Z last stanford>}>}>@db")


@pytest.fixture
def q7():
    return parse_query(
        "<f(P) stanford yes> :- <P p {<X name {<Z last stanford>}>}>@db")


@pytest.fixture
def small_people():
    """A tiny, fully hand-checked person database.

    p1 matches (Q5) and (Q7): name contains <last stanford>.
    p2 matches (Q5) but not (Q7): the stanford last name is under nick.
    p3 matches (Q3) for the value "leland" (first name leland).
    """
    return build_database("db", [
        obj("p", [obj("name", [obj("last", "stanford"),
                               obj("first", "jane")]),
                  obj("phone", "650-1111")], oid="p1"),
        obj("p", [obj("nick", [obj("last", "stanford")]),
                  obj("name", [obj("last", "gupta"),
                               obj("first", "ashish")]),
                  obj("phone", "650-2222")], oid="p2"),
        obj("p", [obj("name", [obj("last", "jones"),
                               obj("first", "leland")]),
                  obj("phone", "650-3333")], oid="p3"),
    ])


@pytest.fixture
def biblio_db():
    return generate_bibliography(60, seed=11)
