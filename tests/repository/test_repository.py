"""Tests for the repository facade, materialized views, and store."""

import pytest

from repro.errors import RepositoryError
from repro.oem import identical
from repro.repository import Repository, Store, ViewManager
from repro.tsl import evaluate, parse_query
from repro.workloads import (conference_query, conference_view,
                             generate_bibliography, sigmod_97_query)


@pytest.fixture
def repo(biblio_db):
    return Repository.from_database(biblio_db)


class TestStore:
    def test_version_bumps_on_update(self):
        store = Store("db")
        v0 = store.version
        store.add_atomic("x", "a", 1)
        assert store.version == v0 + 1
        store.add_root("x")
        assert store.version == v0 + 2

    def test_wrap_existing(self, biblio_db):
        store = Store.wrap(biblio_db)
        assert store.db is biblio_db
        assert store.version == 0


class TestViewManager:
    def test_define_materializes(self, repo):
        view = repo.define_view("sigmod",
                                conference_view("sigmod", "sigmod"))
        assert view.data.stats()["objects"] > 0
        assert repo.views.is_fresh("sigmod")

    def test_duplicate_name_rejected(self, repo):
        repo.define_view("v", conference_view("sigmod", "v"))
        with pytest.raises(RepositoryError, match="already"):
            repo.define_view("v", conference_view("vldb", "v"))

    def test_foreign_source_rejected(self, repo):
        with pytest.raises(RepositoryError, match="sources"):
            repo.define_view("v", "<v(P) x V> :- <P a V>@elsewhere")

    def test_refresh_after_update(self, repo):
        repo.define_view("sigmod", conference_view("sigmod", "sigmod"))
        before = repo.views.views["sigmod"].data.stats()["objects"]
        pub = repo.store.add_set("newpub", "pub")
        repo.store.add_child(pub, repo.store.add_atomic(
            "newbt", "booktitle", "sigmod"))
        repo.store.add_child(pub, repo.store.add_atomic(
            "newy", "year", 1998))
        repo.store.add_root(pub)
        assert not repo.views.is_fresh("sigmod")
        refreshed = repo.views.refresh("sigmod")
        assert refreshed.data.stats()["objects"] > before
        assert repo.views.is_fresh("sigmod")

    def test_drop(self, repo):
        repo.define_view("v", conference_view("sigmod", "v"))
        repo.views.drop("v")
        with pytest.raises(RepositoryError):
            repo.views.refresh("v")


class TestAnswering:
    def test_views_path(self, repo, biblio_db):
        repo.define_view("sigmod", conference_view("sigmod", "sigmod"))
        report = repo.query_with_report(sigmod_97_query())
        assert report.method == "views"
        assert identical(report.answer,
                         evaluate(sigmod_97_query(), biblio_db))
        assert report.rewriting is not None

    def test_direct_then_cache(self, repo):
        query = conference_query("vldb", 1998)
        first = repo.query_with_report(query, use_views=False)
        assert first.method == "direct"
        second = repo.query_with_report(query, use_views=False)
        assert second.method == "cache"
        assert identical(first.answer, second.answer)

    def test_cache_rewriting_narrower_query(self, repo, biblio_db):
        """The Section 1 story: SIGMOD 97 answered from cached SIGMOD."""
        broad = conference_query("sigmod")
        repo.query(broad, use_views=False)          # populate cache
        narrow = sigmod_97_query()
        report = repo.query_with_report(narrow, use_views=False)
        assert report.method == "cache"
        assert identical(report.answer, evaluate(narrow, biblio_db))

    def test_cache_skipped_when_stale(self, repo):
        query = conference_query("icde")
        repo.query(query, use_views=False)
        repo.store.add_root(repo.store.add_atomic("zz", "noise", 1))
        report = repo.query_with_report(query, use_views=False)
        assert report.method == "direct"

    def test_use_cache_false(self, repo):
        query = conference_query("icde")
        repo.query(query, use_views=False)
        report = repo.query_with_report(query, use_views=False,
                                        use_cache=False)
        assert report.method == "direct"

    def test_string_queries_accepted(self, repo):
        report = repo.query_with_report(
            "<f(P) hit 1> :- <P pub {<B booktitle sigmod>}>@db")
        assert report.method in ("direct", "cache", "views")


class TestCache:
    def test_stats(self, repo):
        query = conference_query("pods")
        repo.query(query, use_views=False)
        repo.query(query, use_views=False)
        stats = repo.cache.stats
        assert stats.lookups == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction(self, biblio_db):
        repo = Repository.from_database(biblio_db, cache_capacity=2)
        for conf in ("sigmod", "vldb", "pods"):
            repo.query(conference_query(conf), use_views=False)
        assert len(repo.cache) == 2
        assert repo.cache.stats.evictions == 1

    def test_invalidate(self, repo):
        repo.query(conference_query("kdd"), use_views=False)
        repo.cache.invalidate()
        assert len(repo.cache) == 0
        assert repo.cache.stats.invalidations == 1

    def test_entry_hit_counter(self, repo):
        query = conference_query("edbt")
        repo.query(query, use_views=False)
        repo.query(query, use_views=False)
        [entry] = repo.cache.entries.values()
        assert entry.hits == 1
