"""Tests for the cached-query manager: rewriting-based lookup, LRU,
stale-entry purging, canonical-hash dedup, and the shared rewrite
session."""

import pytest

from repro.obs import MetricsRegistry
from repro.oem import identical
from repro.oem.model import OemDatabase
from repro.repository import QueryCache
from repro.tsl import evaluate
from repro.tsl.ast import Query
from repro.workloads import conference_query, sigmod_97_query


@pytest.fixture
def db(biblio_db):
    return biblio_db


def answer_for(statement, db):
    return evaluate(statement, db)


def cache_with(db, conferences, capacity=16, version=0, **kwargs):
    cache = QueryCache(capacity=capacity, **kwargs)
    for conference in conferences:
        statement = conference_query(conference)
        cache.insert(statement, answer_for(statement, db), version)
    return cache


class TestHitMissStats:
    def test_hit_serves_rewritten_answer(self, db):
        cache = cache_with(db, ["sigmod"])
        query = sigmod_97_query()
        answer = cache.lookup(query, 0)
        assert answer is not None
        assert identical(answer, evaluate(query, db))
        assert (cache.stats.lookups, cache.stats.hits) == (1, 1)

    def test_miss_on_uncovered_query(self, db):
        cache = cache_with(db, ["sigmod"])
        assert cache.lookup(conference_query("vldb"), 0) is None
        assert cache.stats.misses == 1

    def test_hit_rate(self, db):
        cache = cache_with(db, ["sigmod"])
        cache.lookup(sigmod_97_query(), 0)
        cache.lookup(conference_query("vldb"), 0)
        assert cache.stats.hit_rate == 0.5

    def test_empty_cache_misses(self, db):
        cache = QueryCache()
        assert cache.lookup(sigmod_97_query(), 0) is None
        assert cache.stats.hit_rate == 0.0

    def test_lookup_metrics_exported(self, db):
        metrics = MetricsRegistry()
        cache = cache_with(db, ["sigmod"], metrics=metrics)
        cache.lookup(sigmod_97_query(), 0)
        cache.lookup(conference_query("vldb"), 0)
        counters = metrics.snapshot()["counters"]
        assert counters["cache.lookup.hits"] == 1
        assert counters["cache.lookup.misses"] == 1
        # The shared session's memo tables report under cache.* too.
        assert counters.get("cache.misses", 0) > 0


class TestEviction:
    def test_lru_eviction_beyond_capacity(self, db):
        cache = cache_with(db, ["sigmod", "vldb", "pods"], capacity=2)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        kept = {str(e.statement.body[0].pattern.value)
                for e in cache.entries.values()}
        assert not any("sigmod" in label for label in kept)

    def test_hit_refreshes_lru_position(self, db):
        cache = cache_with(db, ["sigmod", "vldb"], capacity=2)
        assert cache.lookup(conference_query("sigmod"), 0) is not None
        statement = conference_query("pods")
        cache.insert(statement, answer_for(statement, db), 0)
        kept = {str(e.statement.body[0].pattern.value)
                for e in cache.entries.values()}
        assert any("sigmod" in label for label in kept)
        assert not any("vldb" in label for label in kept)


class TestStalePurgeRegression:
    """Entries cached against an old store version used to be skipped
    by lookup but never removed -- pinning LRU capacity forever."""

    def test_lookup_purges_stale_entries(self, db):
        cache = cache_with(db, ["sigmod"], version=0)
        assert cache.lookup(sigmod_97_query(), 1) is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_insert_purges_stale_entries(self, db):
        cache = cache_with(db, ["sigmod"], version=0)
        statement = conference_query("vldb")
        cache.insert(statement, answer_for(statement, db), 1)
        assert len(cache) == 1
        assert cache.stats.invalidations == 1

    def test_stale_entries_no_longer_pin_capacity(self, db):
        cache = cache_with(db, ["sigmod", "vldb"], capacity=2, version=0)
        for conference in ("pods", "icde"):
            statement = conference_query(conference)
            cache.insert(statement, answer_for(statement, db), 1)
        # Stale entries were purged, not evicted: the two fresh entries
        # fit without any LRU pressure.
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.stats.invalidations == 2

    def test_fresh_version_hits_again_after_reinsert(self, db):
        cache = cache_with(db, ["sigmod"], version=0)
        cache.lookup(sigmod_97_query(), 1)      # purge
        statement = conference_query("sigmod")
        cache.insert(statement, answer_for(statement, db), 1)
        assert cache.lookup(sigmod_97_query(), 1) is not None


class TestDuplicateInsertRegression:
    """insert() used to append a fresh entry for every call, so caching
    the same statement repeatedly filled the LRU with copies and evicted
    genuinely distinct entries."""

    def test_same_statement_refreshes_in_place(self, db):
        cache = cache_with(db, ["sigmod"])
        statement = conference_query("sigmod")
        cache.insert(statement, answer_for(statement, db), 0)
        assert len(cache) == 1
        assert cache.stats.refreshes == 1

    def test_renamed_reordered_variant_dedups(self, db):
        cache = cache_with(db, ["sigmod"])
        statement = conference_query("sigmod").rename_apart("copy")
        variant = Query(statement.head, tuple(reversed(statement.body)))
        cache.insert(variant, answer_for(variant, db), 0)
        assert len(cache) == 1
        assert cache.stats.refreshes == 1

    def test_refresh_updates_answer_and_version(self, db):
        statement = conference_query("sigmod")
        cache = QueryCache()
        cache.insert(statement, OemDatabase("empty"), 0)
        cache.insert(statement, answer_for(statement, db), 0)
        answer = cache.lookup(sigmod_97_query(), 0)
        assert identical(answer, evaluate(sigmod_97_query(), db))

    def test_duplicates_no_longer_evict_distinct_entries(self, db):
        cache = cache_with(db, ["sigmod", "vldb"], capacity=2)
        statement = conference_query("sigmod")
        for _ in range(3):
            cache.insert(statement, answer_for(statement, db), 0)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.lookup(conference_query("vldb"), 0) is not None

    def test_refresh_moves_entry_to_lru_tail(self, db):
        cache = cache_with(db, ["sigmod", "vldb"], capacity=2)
        statement = conference_query("sigmod")
        cache.insert(statement, answer_for(statement, db), 0)
        extra = conference_query("pods")
        cache.insert(extra, answer_for(extra, db), 0)
        kept = {str(e.statement.body[0].pattern.value)
                for e in cache.entries.values()}
        assert any("sigmod" in label for label in kept)


class TestSharedSession:
    def test_session_persists_across_lookups(self, db):
        cache = cache_with(db, ["sigmod"])
        cache.lookup(sigmod_97_query(), 0)
        session = cache.session()
        cache.lookup(sigmod_97_query(), 0)
        assert cache.session() is session
        assert session.stats()["rewrite"]["hits"] >= 1

    def test_insert_keeps_view_independent_memos(self, db):
        cache = cache_with(db, ["sigmod"])
        cache.lookup(sigmod_97_query(), 0)
        chased = cache.session().stats()["chase"]["size"]
        assert chased > 0
        statement = conference_query("vldb")
        cache.insert(statement, answer_for(statement, db), 0)
        session = cache.session()
        assert session.stats()["chase"]["size"] == chased
        assert session.stats()["rewrite"]["size"] == 0

    def test_memoized_and_unmemoized_agree(self, db):
        queries = [sigmod_97_query(), conference_query("vldb"),
                   conference_query("sigmod", 1997)]
        memo = cache_with(db, ["sigmod", "vldb"])
        plain = cache_with(db, ["sigmod", "vldb"], memoize=False)
        assert plain.session().enabled is False
        for query in queries:
            for _ in range(2):      # second round exercises memo hits
                left = memo.lookup(query, 0)
                right = plain.lookup(query, 0)
                assert (left is None) == (right is None)
                if left is not None:
                    assert identical(left, right)


class TestInvalidate:
    def test_invalidate_clears_and_counts(self, db):
        metrics = MetricsRegistry()
        cache = cache_with(db, ["sigmod", "vldb"], metrics=metrics)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2
        counters = metrics.snapshot()["counters"]
        assert counters["cache.entries.invalidations"] == 2

    def test_insert_after_invalidate_works(self, db):
        cache = cache_with(db, ["sigmod"])
        cache.invalidate()
        statement = conference_query("sigmod")
        cache.insert(statement, answer_for(statement, db), 0)
        assert cache.lookup(sigmod_97_query(), 0) is not None
