"""Tests for store persistence and the executor's fetch-once sharing."""

from repro.mediator import CapabilityView, Mediator, Source
from repro.oem import build_database, identical, obj
from repro.repository import Repository, Store
from repro.tsl import parse_query
from repro.workloads import generate_bibliography


class TestStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = Store.wrap(generate_bibliography(20, seed=8))
        store.add_root(store.add_atomic("extra", "noise", 1))
        path = tmp_path / "store.json"
        store.save(path)
        restored = Store.load(path)
        assert identical(store.db, restored.db)
        assert restored.version == store.version

    def test_restored_store_powers_a_repository(self, tmp_path):
        store = Store.wrap(generate_bibliography(20, seed=9))
        path = tmp_path / "store.json"
        store.save(path)
        repo = Repository(Store.load(path))
        answer = repo.query(
            "<f(P) hit 1> :- <P pub {<B booktitle sigmod>}>@db")
        assert answer is not None


class TestExecutorSharing:
    def test_shared_capability_fetched_once(self):
        db = build_database("s1", [
            obj("pub", [obj("conf", "sigmod"), obj("year", 1997)]),
        ])
        capability = CapabilityView.from_text("dump", """
            <v(P) pub {<c(P,L,W) L W>}> :- <P pub {<X L W>}>@s1
        """)
        mediator = Mediator(
            sources={"s1": Source("s1", db, [capability])})
        # Two rules in one answer (via an integrated view with a union of
        # expansions would be ideal; two sequential answers suffice to
        # observe the wrapper counter on one shared instance name).
        query = parse_query(
            "<f(P) hit yes> :- <P pub {<C conf sigmod>}>@s1 AND "
            "<P pub {<Y year 1997>}>@s1")
        report = mediator.answer_with_report(query)
        # One plan, one capability instance: exactly one source query.
        assert report.source_queries == 1
        assert mediator.wrappers["s1"].stats.queries_sent == 1
