"""Tests for OEM isomorphism (Section 6, "Isomorphism")."""

from repro.logic.terms import Constant
from repro.oem import build_database, find_isomorphism, isomorphic, obj


def _db(oid_prefix=""):
    return build_database("db", [
        obj("p", [obj("name", "ann", oid=f"{oid_prefix}n"),
                  obj("age", 31, oid=f"{oid_prefix}a")],
            oid=f"{oid_prefix}p"),
    ])


class TestIsomorphic:
    def test_oid_renaming_is_isomorphic(self):
        assert isomorphic(_db(""), _db("z_"))

    def test_identical_is_isomorphic(self):
        assert isomorphic(_db(), _db())

    def test_label_mismatch(self):
        other = build_database("db", [
            obj("q", [obj("name", "ann"), obj("age", 31)]),
        ])
        assert not isomorphic(_db(), other)

    def test_value_mismatch(self):
        other = build_database("db", [
            obj("p", [obj("name", "bob"), obj("age", 31)]),
        ])
        assert not isomorphic(_db(), other)

    def test_structure_mismatch(self):
        other = build_database("db", [
            obj("p", [obj("name", "ann")]),
        ])
        assert not isomorphic(_db(), other)

    def test_root_sets_matter(self):
        # Same objects, but one database exposes an extra root.
        left = build_database("db", [obj("p", [obj("x", 1)]),
                                     obj("p", [obj("x", 1)])])
        right = build_database("db", [obj("p", [obj("x", 1)])])
        assert not isomorphic(left, right)

    def test_shared_vs_duplicated_subobject(self):
        from repro.oem import ref
        shared = build_database("db", [
            obj("a", [ref("s")]), obj("b", [ref("s")]),
        ], extra=[obj("leaf", "v", oid="s")])
        duplicated = build_database("db", [
            obj("a", [obj("leaf", "v")]), obj("b", [obj("leaf", "v")]),
        ])
        # Sharing is structural: 3 objects vs 4 objects.
        assert not isomorphic(shared, duplicated)

    def test_cycles(self):
        def cyclic(prefix):
            from repro.oem import ref
            return build_database("db", [
                obj("a", [obj("b", [ref(f"{prefix}t")])], oid=f"{prefix}t"),
            ])
        assert isomorphic(cyclic("x"), cyclic("y"))


class TestFindIsomorphism:
    def test_mapping_returned(self):
        mapping = find_isomorphism(_db(""), _db("z_"))
        assert mapping is not None
        assert mapping[Constant("p")] == Constant("z_p")
        assert mapping[Constant("n")] == Constant("z_n")

    def test_none_when_not_isomorphic(self):
        other = build_database("db", [obj("p", [obj("name", "x")])])
        assert find_isomorphism(_db(), other) is None

    def test_mapping_is_bijective(self):
        mapping = find_isomorphism(_db(""), _db("y_"))
        assert len(set(mapping.values())) == len(mapping)
