"""E1: the Figure 3 example objects round-trip and are queryable."""

from repro.oem import dumps, identical, loads
from repro.tsl import evaluate, parse_query
from repro.workloads import figure3_database


class TestFigure3:
    def test_shape(self, fig3):
        assert fig3.stats() == {"objects": 7, "atomic": 5, "set": 2,
                                "edges": 5, "roots": 2}

    def test_root_labels(self, fig3):
        labels = sorted(r.label for r in fig3.root_objects())
        assert labels == ["person", "pub"]

    def test_pub_contents(self, fig3):
        pub = fig3.object("pub1")
        by_label = {c.label: c.value for c in pub.value}
        assert by_label == {"author": "A. Gupta",
                            "title": "Constraint Views",
                            "booktitle": "SIGMOD",
                            "year": 1993}

    def test_serialization_round_trip(self, fig3):
        assert identical(fig3, loads(dumps(fig3)))

    def test_query_sigmod_pubs(self, fig3):
        q = parse_query('<f(P) hit T> :- '
                        '<P pub {<B booktitle "SIGMOD">}>@db AND '
                        '<P pub {<X title T>}>@db')
        answer = evaluate(q, fig3)
        assert len(answer.roots) == 1
        assert answer.root_objects()[0].value == "Constraint Views"

    def test_query_author_join(self, fig3):
        # The person and pub objects join on the author name.
        q = parse_query('<f(P,Q) match A> :- '
                        '<P person {<N name A>}>@db AND '
                        '<Q pub {<U author A>}>@db')
        answer = evaluate(q, fig3)
        assert len(answer.roots) == 1
        assert answer.root_objects()[0].value == "A. Gupta"

    def test_query_1993(self, fig3):
        q = parse_query("<f(P) old yes> :- <P pub {<Y year 1993>}>@db")
        assert len(evaluate(q, fig3).roots) == 1

    def test_query_no_match(self, fig3):
        q = parse_query("<f(P) new yes> :- <P pub {<Y year 1999>}>@db")
        assert len(evaluate(q, fig3).roots) == 0
