"""Tests for identical-equivalence of OEM databases (Section 3)."""

from repro.oem import build_database, explain_difference, identical, obj


def _base():
    return build_database("left", [
        obj("p", [obj("name", "ann", oid="n1"),
                  obj("age", 31, oid="a1")], oid="p1"),
    ])


class TestIdentical:
    def test_reflexive(self):
        db = _base()
        assert identical(db, db)

    def test_equal_copies(self):
        assert identical(_base(), _base())

    def test_extra_root(self):
        left = _base()
        right = _base()
        right.add_atomic("x9", "extra", 1)
        right.add_root("x9")
        assert not identical(left, right)
        diffs = explain_difference(left, right)
        assert any("x9" in d for d in diffs)

    def test_label_difference(self):
        left = _base()
        right = build_database("right", [
            obj("q", [obj("name", "ann", oid="n1"),
                      obj("age", 31, oid="a1")], oid="p1"),
        ])
        diffs = explain_difference(left, right)
        assert any("label" in d for d in diffs)

    def test_atomic_value_difference(self):
        right = build_database("right", [
            obj("p", [obj("name", "bob", oid="n1"),
                      obj("age", 31, oid="a1")], oid="p1"),
        ])
        diffs = explain_difference(_base(), right)
        assert any("'ann'" in d and "'bob'" in d for d in diffs)

    def test_kind_difference(self):
        right = build_database("right", [
            obj("p", [obj("name", [], oid="n1"),
                      obj("age", 31, oid="a1")], oid="p1"),
        ])
        diffs = explain_difference(_base(), right)
        assert any("atomic" in d and "set" in d for d in diffs)

    def test_subobject_set_difference(self):
        right = build_database("right", [
            obj("p", [obj("name", "ann", oid="n1")], oid="p1"),
        ], extra=[obj("age", 31, oid="a1")])
        diffs = explain_difference(_base(), right)
        assert any("subobjects differ" in d or "only in" in d
                   for d in diffs)

    def test_oid_renaming_is_not_identical(self):
        renamed = build_database("right", [
            obj("p", [obj("name", "ann", oid="n9"),
                      obj("age", 31, oid="a1")], oid="p1"),
        ])
        assert not identical(_base(), renamed)

    def test_unreachable_objects_ignored(self):
        left = _base()
        right = _base()
        right.add_atomic("floating", "junk", 0)  # not a root, unreachable
        assert identical(left, right)

    def test_limit_caps_output(self):
        right = build_database("right", [
            obj("q", [obj("name", "bob", oid="n1"),
                      obj("years", 32, oid="a1")], oid="p1"),
        ])
        diffs = explain_difference(_base(), right, limit=1)
        assert len(diffs) == 1

    def test_subobject_order_irrelevant(self):
        reordered = build_database("right", [
            obj("p", [obj("age", 31, oid="a1"),
                      obj("name", "ann", oid="n1")], oid="p1"),
        ])
        assert identical(_base(), reordered)
