"""Unit tests for the OEM data model."""

import pytest

from repro.errors import DuplicateOidError, OemError, UnknownOidError
from repro.logic.terms import Constant, fn, var
from repro.oem import OemDatabase, merge_databases


@pytest.fixture
def db():
    d = OemDatabase("db")
    d.add_set("p1", "person")
    d.add_atomic("n1", "name", "ann")
    d.add_atomic("a1", "age", 31)
    d.add_child("p1", "n1")
    d.add_child("p1", "a1")
    d.add_root("p1")
    return d


class TestConstruction:
    def test_oids_coerced_to_constants(self, db):
        assert Constant("p1") in set(db.oids())

    def test_function_term_oids(self):
        d = OemDatabase()
        oid = fn("f", Constant(1))
        d.add_atomic(oid, "x", "y")
        assert d.label(oid) == "x"

    def test_non_ground_oid_rejected(self):
        with pytest.raises(OemError, match="ground"):
            OemDatabase().add_atomic(var("X"), "a", "b")

    def test_duplicate_identical_is_idempotent(self, db):
        db.add_atomic("n1", "name", "ann")
        assert len(db) == 3

    def test_duplicate_conflicting_value(self, db):
        with pytest.raises(DuplicateOidError):
            db.add_atomic("n1", "name", "bob")

    def test_duplicate_conflicting_kind(self, db):
        with pytest.raises(DuplicateOidError):
            db.add_set("n1", "name")
        with pytest.raises(DuplicateOidError):
            db.add_atomic("p1", "person", "x")

    def test_child_of_atomic_rejected(self, db):
        with pytest.raises(OemError, match="atomic"):
            db.add_child("n1", "a1")

    def test_child_of_unknown_parent(self, db):
        with pytest.raises(UnknownOidError):
            db.add_child("zz", "n1")

    def test_duplicate_edge_ignored(self, db):
        db.add_child("p1", "n1")
        assert db.children("p1") == (Constant("n1"), Constant("a1"))

    def test_duplicate_root_ignored(self, db):
        db.add_root("p1")
        assert db.roots == (Constant("p1"),)


class TestInspection:
    def test_label(self, db):
        assert db.label("p1") == "person"

    def test_label_unknown(self, db):
        with pytest.raises(UnknownOidError):
            db.label("zz")

    def test_is_atomic(self, db):
        assert db.is_atomic("n1")
        assert not db.is_atomic("p1")

    def test_atomic_value(self, db):
        assert db.atomic_value("a1") == 31
        with pytest.raises(OemError, match="not atomic"):
            db.atomic_value("p1")

    def test_children_of_atomic_empty(self, db):
        assert db.children("n1") == ()

    def test_is_root(self, db):
        assert db.is_root("p1")
        assert not db.is_root("n1")

    def test_len_and_contains(self, db):
        assert len(db) == 3
        assert "p1" in db
        assert "zz" not in db

    def test_stats(self, db):
        assert db.stats() == {"objects": 3, "atomic": 2, "set": 1,
                              "edges": 2, "roots": 1}

    def test_repr(self, db):
        assert "objects=3" in repr(db)


class TestNavigation:
    def test_object_view(self, db):
        p = db.object("p1")
        assert p.label == "person"
        assert not p.is_atomic
        labels = sorted(child.label for child in p.value)
        assert labels == ["age", "name"]

    def test_subobjects_filter(self, db):
        p = db.object("p1")
        names = p.subobjects("name")
        assert len(names) == 1
        assert names[0].value == "ann"

    def test_object_equality(self, db):
        assert db.object("p1") == db.object("p1")
        assert db.object("p1") != db.object("n1")

    def test_object_unknown(self, db):
        with pytest.raises(UnknownOidError):
            db.object("zz")


class TestReachability:
    def test_reachable_from(self, db):
        reachable = db.reachable_from("p1")
        assert {str(o) for o in reachable} == {"p1", "n1", "a1"}

    def test_reachable_excluding_start(self, db):
        reachable = db.reachable_from("p1", include_start=False)
        assert Constant("p1") not in reachable

    def test_reachable_with_cycle(self):
        d = OemDatabase()
        d.add_set("a", "x")
        d.add_set("b", "y")
        d.add_child("a", "b")
        d.add_child("b", "a")
        d.add_root("a")
        assert len(d.reachable_oids()) == 2

    def test_unreachable_ignored(self, db):
        db.add_atomic("orphan", "o", 1)
        assert Constant("orphan") not in db.reachable_oids()


class TestCopySubgraph:
    def test_copy_preserves_oids(self, db):
        target = OemDatabase("t")
        db.copy_subgraph_into(target, "p1")
        assert len(target) == 3
        assert target.label("p1") == "person"
        assert set(target.children("p1")) == set(db.children("p1"))

    def test_copy_cyclic_subgraph(self):
        d = OemDatabase()
        d.add_set("a", "x")
        d.add_set("b", "y")
        d.add_child("a", "b")
        d.add_child("b", "a")
        d.add_root("a")
        target = OemDatabase("t")
        d.copy_subgraph_into(target, "a")
        assert set(target.children("b")) == {Constant("a")}


class TestIntegrity:
    def test_dangling_edge_detected(self):
        d = OemDatabase()
        d.add_set("a", "x")
        d._children[Constant("a")].append(Constant("ghost"))
        with pytest.raises(OemError, match="dangling"):
            d.check_integrity()

    def test_unregistered_root_detected(self):
        d = OemDatabase()
        d.add_root("ghost")
        with pytest.raises(OemError, match="root"):
            d.check_integrity()


class TestMerge:
    def test_merge_disjoint(self, db):
        other = OemDatabase("o")
        other.add_atomic("q1", "pub", "t")
        other.add_root("q1")
        merged = merge_databases("m", [db, other])
        assert len(merged) == 4
        assert len(merged.roots) == 2

    def test_merge_overlapping_identical(self, db):
        merged = merge_databases("m", [db, db])
        assert len(merged) == 3
