"""Unit tests for the OEM builders."""

import pytest

from repro.logic.terms import Constant
from repro.oem import DatabaseBuilder, build_database, obj, ref


class TestBuildDatabase:
    def test_atomic_and_set(self):
        db = build_database("db", [
            obj("person", [obj("name", "ann"), obj("age", 31)]),
        ])
        assert db.stats()["objects"] == 3
        root = db.root_objects()[0]
        assert root.label == "person"
        assert sorted(c.label for c in root.value) == ["age", "name"]

    def test_explicit_oids(self):
        db = build_database("db", [obj("x", "v", oid="custom")])
        assert db.label("custom") == "x"

    def test_fresh_oids_are_sequential(self):
        db = build_database("db", [obj("a", "1"), obj("b", "2")])
        assert Constant("&1") in set(db.oids())
        assert Constant("&2") in set(db.oids())

    def test_empty_set_object(self):
        db = build_database("db", [obj("empty", [])])
        root = db.root_objects()[0]
        assert not root.is_atomic
        assert root.value == ()

    def test_none_value_is_empty_set(self):
        db = build_database("db", [obj("empty")])
        assert not db.root_objects()[0].is_atomic

    def test_sharing_with_ref(self):
        db = build_database("db", [
            obj("a", [ref("shared")]),
            obj("b", [ref("shared")]),
        ], extra=[obj("s", "val", oid="shared")])
        a, b = db.root_objects()
        assert a.value[0].oid == b.value[0].oid

    def test_cycle_with_ref(self):
        db = build_database("db", [
            obj("a", [obj("b", [ref("top")])], oid="top"),
        ])
        assert len(db.reachable_oids()) == 2

    def test_deep_nesting(self):
        spec = obj("l1", [obj("l2", [obj("l3", [obj("l4", "deep")])])])
        db = build_database("db", [spec])
        assert db.stats()["objects"] == 4


class TestDatabaseBuilder:
    def test_incremental(self):
        b = DatabaseBuilder("db")
        p = b.set("person")
        n = b.atomic("name", "ann")
        b.edge(p, n)
        b.root(p)
        db = b.finish()
        assert db.stats() == {"objects": 2, "atomic": 1, "set": 1,
                              "edges": 1, "roots": 1}

    def test_custom_oid(self):
        b = DatabaseBuilder()
        b.root(b.atomic("x", 1, oid="mine"))
        db = b.finish()
        assert db.label("mine") == "x"

    def test_finish_checks_integrity(self):
        b = DatabaseBuilder()
        b.root("ghost")
        with pytest.raises(Exception):
            b.finish()
