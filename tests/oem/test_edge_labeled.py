"""Tests for the edge-labeled OEM variant (Section 6)."""

from repro.logic.terms import Constant
from repro.oem import (EdgeLabeledDatabase, build_database, from_node_labeled,
                       obj, to_node_labeled)
from repro.oem.edge_labeled import ROOT_LABEL


def _edge_db():
    db = EdgeLabeledDatabase("db")
    db.add_node("r")
    db.add_node("n", value="ann")
    db.add_node("a", value=31)
    db.add_edge("r", "name", "n")
    db.add_edge("r", "age", "a")
    db.add_root("r")
    return db


class TestEdgeLabeled:
    def test_basic_construction(self):
        db = _edge_db()
        assert db.value("n") == "ann"
        assert len(db.edges("r")) == 2

    def test_duplicate_edge_ignored(self):
        db = _edge_db()
        db.add_edge("r", "name", "n")
        assert len(db.edges("r")) == 2

    def test_to_node_labeled(self):
        node_db = to_node_labeled(_edge_db())
        root = node_db.root_objects()[0]
        assert root.label == ROOT_LABEL
        labels = sorted(c.label for c in root.value)
        assert labels == ["age", "name"]
        name = root.subobjects("name")[0]
        assert name.value == "ann"

    def test_node_split_on_multiple_incoming_labels(self):
        db = EdgeLabeledDatabase("db")
        db.add_node("r")
        db.add_node("x", value="v")
        db.add_edge("r", "alpha", "x")
        db.add_edge("r", "beta", "x")
        db.add_root("r")
        node_db = to_node_labeled(db)
        root = node_db.root_objects()[0]
        labels = sorted(c.label for c in root.value)
        assert labels == ["alpha", "beta"]  # x split into two variants

    def test_from_node_labeled(self):
        node_db = build_database("db", [
            obj("p", [obj("name", "ann", oid="n1")], oid="p1"),
        ])
        edge_db = from_node_labeled(node_db)
        assert edge_db.value(Constant("n1")) == "ann"
        assert edge_db.edges(Constant("p1")) == \
            (("name", Constant("n1")),)
        assert edge_db.roots == (Constant("p1"),)

    def test_round_trip_preserves_structure(self):
        node_db = build_database("db", [
            obj("p", [obj("name", "ann"), obj("kids",
                                              [obj("kid", "joe")])]),
        ])
        back = to_node_labeled(from_node_labeled(node_db))
        # One extra root wrapper label, but the label paths survive.
        root = back.root_objects()[0]
        assert sorted(c.label for c in root.value) == ["kids", "name"]

    def test_cycles_convert(self):
        db = EdgeLabeledDatabase("db")
        db.add_node("a")
        db.add_node("b")
        db.add_edge("a", "next", "b")
        db.add_edge("b", "next", "a")
        db.add_root("a")
        node_db = to_node_labeled(db)
        assert len(node_db.reachable_oids()) >= 2
