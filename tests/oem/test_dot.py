"""Tests for Graphviz DOT export."""

from repro.oem import build_database, obj, ref, to_dot


class TestToDot:
    def test_basic_structure(self):
        db = build_database("db", [
            obj("p", [obj("name", "ann", oid="n1")], oid="p1"),
        ])
        dot = to_dot(db)
        assert dot.startswith('digraph "oem"')
        assert dot.endswith("}")
        assert '"p1" -> "n1";' in dot

    def test_atomic_values_rendered(self):
        db = build_database("db", [obj("name", "ann", oid="n1")])
        assert "name = ann" in to_dot(db)

    def test_roots_double_circled(self):
        db = build_database("db", [obj("p", [obj("x", 1, oid="x1")],
                                       oid="p1")])
        dot = to_dot(db)
        root_line = next(line for line in dot.splitlines()
                         if line.strip().startswith('"p1"'))
        assert "peripheries=2" in root_line
        child_line = next(line for line in dot.splitlines()
                          if line.strip().startswith('"x1"'))
        assert "peripheries" not in child_line

    def test_unreachable_excluded_by_default(self):
        db = build_database("db", [obj("p", "v", oid="p1")])
        db.add_atomic("orphan", "junk", 0)
        assert "orphan" not in to_dot(db)
        assert "orphan" in to_dot(db, reachable_only=False)

    def test_quoting(self):
        db = build_database("db", [obj("t", 'say "hi"', oid="q1")])
        dot = to_dot(db)
        assert '\\"hi\\"' in dot

    def test_cycles_render(self):
        db = build_database("db", [
            obj("a", [obj("b", [ref("t")], oid="b1")], oid="t"),
        ])
        dot = to_dot(db)
        assert '"b1" -> "t";' in dot
        assert '"t" -> "b1";' in dot
