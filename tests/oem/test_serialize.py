"""Tests for JSON serialization of databases and terms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OemError
from repro.logic.terms import Constant, FunctionTerm, Variable, const, fn, var
from repro.oem import (build_database, database_from_json, database_to_json,
                       dumps, identical, loads, obj, ref, term_from_json,
                       term_to_json)
from repro.workloads import RandomOemConfig, generate_random_database


class TestTermCodec:
    @pytest.mark.parametrize("term", [
        const("a"), const(42), const(2.5),
        var("X"),
        fn("f", const("a"), var("Y")),
        fn("f", fn("g", const(1))),
    ])
    def test_round_trip(self, term):
        assert term_from_json(term_to_json(term)) == term

    def test_malformed(self):
        with pytest.raises(OemError):
            term_from_json({"bogus": 1})
        with pytest.raises(OemError):
            term_from_json("plain string")


class TestDatabaseCodec:
    def test_round_trip_simple(self):
        db = build_database("db", [
            obj("p", [obj("name", "ann"), obj("age", 31)]),
        ])
        assert identical(db, loads(dumps(db)))

    def test_round_trip_preserves_name(self):
        db = build_database("mydb", [obj("x", 1)])
        assert loads(dumps(db)).name == "mydb"

    def test_round_trip_with_cycle(self):
        db = build_database("db", [
            obj("a", [obj("b", [ref("top")])], oid="top"),
        ])
        restored = loads(dumps(db))
        assert identical(db, restored)

    def test_round_trip_with_sharing(self):
        db = build_database("db", [
            obj("a", [ref("s")]), obj("b", [ref("s")]),
        ], extra=[obj("leaf", "v", oid="s")])
        restored = loads(dumps(db))
        assert identical(db, restored)

    def test_round_trip_function_term_oids(self):
        db = build_database("db", [
            obj("ans", "yes", oid=fn("f", const("p1"), const(7))),
        ])
        restored = loads(dumps(db))
        assert identical(db, restored)

    def test_json_shape(self):
        db = build_database("db", [obj("x", 1)])
        data = database_to_json(db)
        assert set(data) == {"name", "objects", "roots"}
        assert data["objects"][0]["label"] == "x"

    def test_from_json_validates_integrity(self):
        data = {"name": "db", "objects": [], "roots": [{"c": "ghost"}]}
        with pytest.raises(OemError):
            database_from_json(data)


@given(st.integers(min_value=0, max_value=50))
def test_random_database_round_trip(seed):
    db = generate_random_database(
        RandomOemConfig(roots=2, max_depth=3, max_fanout=2,
                        share_probability=0.2), seed=seed)
    assert identical(db, loads(dumps(db)))
