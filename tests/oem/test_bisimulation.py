"""Tests for bisimulation equivalence (Section 6, cf. UnQL [4])."""

from repro.logic.terms import Constant
from repro.oem import (bisimilar, bisimulation_classes, build_database,
                       isomorphic, obj, objects_bisimilar)


class TestBisimilar:
    def test_identical_databases(self):
        db = build_database("db", [obj("p", [obj("x", 1)])])
        assert bisimilar(db, db)

    def test_duplicates_collapse(self):
        # Bisimulation is coarser than isomorphism: duplicated identical
        # subobjects do not matter.
        single = build_database("db", [obj("p", [obj("x", 1)])])
        double = build_database("db", [
            obj("p", [obj("x", 1, oid="x1"), obj("x", 1, oid="x2")]),
        ])
        assert bisimilar(single, double)
        assert not isomorphic(single, double)

    def test_label_difference_detected(self):
        left = build_database("db", [obj("p", [obj("x", 1)])])
        right = build_database("db", [obj("p", [obj("y", 1)])])
        assert not bisimilar(left, right)

    def test_value_difference_detected(self):
        left = build_database("db", [obj("p", [obj("x", 1)])])
        right = build_database("db", [obj("p", [obj("x", 2)])])
        assert not bisimilar(left, right)

    def test_depth_difference_detected(self):
        shallow = build_database("db", [obj("p", [obj("x", 1)])])
        deep = build_database("db", [obj("p", [obj("x", [obj("y", 1)])])])
        assert not bisimilar(shallow, deep)

    def test_duplicate_roots_collapse(self):
        one = build_database("db", [obj("p", [obj("x", 1)])])
        two = build_database("db", [obj("p", [obj("x", 1)]),
                                    obj("p", [obj("x", 1)])])
        assert bisimilar(one, two)

    def test_cyclic_vs_unrolled_finite(self):
        from repro.oem import ref
        cyclic = build_database("db", [
            obj("a", [ref("t")], oid="t"),
        ])
        two_cycle = build_database("db", [
            obj("a", [obj("a", [ref("u")], oid="v")], oid="u"),
        ])
        # A self-loop and a 2-cycle of a-labeled sets are bisimilar.
        assert bisimilar(cyclic, two_cycle)


class TestObjectsBisimilar:
    def test_same_structure_different_oids(self):
        left = build_database("db", [obj("p", [obj("x", 1)], oid="l")])
        right = build_database("db", [obj("p", [obj("x", 1)], oid="r")])
        assert objects_bisimilar(left, Constant("l"), right, Constant("r"))

    def test_different_structure(self):
        left = build_database("db", [obj("p", [obj("x", 1)], oid="l")])
        right = build_database("db", [obj("p", [obj("x", 2)], oid="r")])
        assert not objects_bisimilar(left, Constant("l"),
                                     right, Constant("r"))


class TestClasses:
    def test_class_count(self):
        db = build_database("db", [
            obj("p", [obj("x", 1, oid="x1"), obj("x", 1, oid="x2"),
                      obj("y", 2, oid="y1")]),
        ])
        classes = bisimulation_classes(db, db)
        # x1 and x2 share a class (on both sides).
        assert classes[(0, Constant("x1"))] == classes[(0, Constant("x2"))]
        assert classes[(0, Constant("x1"))] == classes[(1, Constant("x1"))]
        assert classes[(0, Constant("x1"))] != classes[(0, Constant("y1"))]
