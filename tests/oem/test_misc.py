"""Coverage for OEM edge cases: merge conflicts, chase guards, DTD API."""

import pytest

from repro.errors import (ChaseContradictionError, DuplicateOidError,
                          OemError)
from repro.oem import build_database, merge_databases, obj
from repro.rewriting import chase, paper_dtd
from repro.tsl import parse_query


class TestMergeConflicts:
    def test_conflicting_value(self):
        left = build_database("l", [obj("a", 1, oid="x")])
        right = build_database("r", [obj("a", 2, oid="x")])
        with pytest.raises(DuplicateOidError):
            merge_databases("m", [left, right])

    def test_conflicting_kind(self):
        left = build_database("l", [obj("a", 1, oid="x")])
        right = build_database("r", [obj("a", [], oid="x")])
        with pytest.raises(DuplicateOidError):
            merge_databases("m", [left, right])

    def test_set_objects_union_children(self):
        left = build_database("l", [obj("a", [obj("b", 1, oid="b1")],
                                        oid="x")])
        right = build_database("r", [obj("a", [obj("c", 2, oid="c1")],
                                         oid="x")])
        merged = merge_databases("m", [left, right])
        assert len(merged.children("x")) == 2


class TestChaseGuards:
    def test_max_steps_guard(self):
        q = parse_query("<f(P) x V> :- <P a V>@db AND <P a W>@db")
        with pytest.raises(ChaseContradictionError, match="terminate"):
            chase(q, max_steps=0)

    def test_generous_budget_finishes(self):
        q = parse_query("<f(P) x V> :- <P a V>@db AND <P a W>@db")
        assert chase(q, max_steps=100)


class TestDtdApi:
    def test_can_contain(self, dtd):
        assert dtd.can_contain("p", "name")
        assert not dtd.can_contain("p", "last")

    def test_children_of_unknown_is_empty(self, dtd):
        assert dtd.children_of("nonexistent") == ()

    def test_is_atomic_unknown_is_unconstrained(self, dtd):
        # Unknown elements are unconstrained, not known-atomic.
        assert not dtd.is_atomic("nonexistent")
