"""The equivalence-relation hierarchy: identical => isomorphic => bisimilar.

Section 3 uses identical equivalence; Section 6 discusses isomorphism and
bisimulation.  These property tests pin the implications between the
three implementations on random databases, plus the edge-labeled
conversion invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.oem import (bisimilar, build_database, from_node_labeled,
                       identical, isomorphic, obj, to_node_labeled)
from repro.workloads import RandomOemConfig, generate_random_database

_SETTINGS = dict(max_examples=25, deadline=None)


def _random_db(seed, share=0.0):
    return generate_random_database(
        RandomOemConfig(roots=2, max_depth=3, max_fanout=2,
                        share_probability=share), seed=seed)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_identical_implies_isomorphic(seed):
    db = _random_db(seed)
    other = _random_db(seed)
    assert identical(db, other)
    assert isomorphic(db, other)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_isomorphic_implies_bisimilar(seed):
    db = _random_db(seed)
    # Rename every oid: isomorphic but (generally) not identical.
    renamed = _renamed_copy(db)
    assert not identical(db, renamed) or len(db.reachable_oids()) == 0
    assert isomorphic(db, renamed)
    assert bisimilar(db, renamed)


def _renamed_copy(db):
    from repro.oem import OemDatabase
    from repro.logic.terms import Constant

    def rename(oid):
        return Constant(f"r~{oid}")

    out = OemDatabase(db.name)
    for oid in db.reachable_oids():
        if db.is_atomic(oid):
            out.add_atomic(rename(oid), db.label(oid), db.atomic_value(oid))
        else:
            out.add_set(rename(oid), db.label(oid))
    for oid in db.reachable_oids():
        for child in db.children(oid):
            out.add_child(rename(oid), rename(child))
    for root in db.roots:
        out.add_root(rename(root))
    return out


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_bisimilar_does_not_imply_isomorphic_in_general(seed):
    # A constructed counterexample (fixed), plus the positive direction
    # randomly: duplicates collapse under bisimulation only.
    single = build_database("db", [obj("p", [obj("x", 1)])])
    double = build_database("db", [
        obj("p", [obj("x", 1, oid="a"), obj("x", 1, oid="b")]),
    ])
    assert bisimilar(single, double)
    assert not isomorphic(single, double)
    db = _random_db(seed)
    assert bisimilar(db, db)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_edge_labeled_round_trip_preserves_paths_below_roots(seed):
    db = _random_db(seed, share=0.3)
    back = to_node_labeled(from_node_labeled(db))
    # Root labels live on incoming edges in the edge-labeled variant, so
    # roots lose theirs (documented); every label path *below* a root
    # survives the round trip exactly.
    original_paths = {path[1:] for path in _label_paths(db)
                      if len(path) >= 2}
    rebuilt = _label_paths_below_root(back)
    assert original_paths == rebuilt


def _label_paths(db, max_depth=6):
    paths = set()

    def walk(oid, prefix, depth):
        label_path = prefix + (str(db.label(oid)),)
        paths.add(label_path)
        if depth < max_depth:
            for child in db.children(oid):
                walk(child, label_path, depth + 1)

    for root in db.roots:
        walk(root, (), 0)
    return paths


def _label_paths_below_root(db, max_depth=6):
    paths = set()

    def walk(oid, prefix, depth):
        label_path = prefix + (str(db.label(oid)),)
        paths.add(label_path)
        if depth < max_depth:
            for child in db.children(oid):
                walk(child, label_path, depth + 1)

    for root in db.roots:
        for child in db.children(root):
            walk(child, (), 0)
    return paths
