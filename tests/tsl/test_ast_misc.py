"""Coverage for AST helpers, printer edges, and error formatting."""

import pytest

from repro.errors import TslSyntaxError, ValidationError
from repro.logic.subst import Substitution
from repro.logic.terms import Constant, Variable, fn, var
from repro.tsl import (SetPattern, SetPatternTerm, parse_query,
                       pattern_depth, pattern_size, print_program,
                       print_query, print_term, query_size)
from repro.tsl.ast import (ObjectPattern, Query, fresh_variable_factory,
                           make_condition)
from repro.tsl.parser import parse_pattern, parse_program


class TestQueryHelpers:
    def test_sources(self):
        q = parse_query("<f(P) x 1> :- <P a V>@s1 AND <Q b W>@s2")
        assert q.sources() == {"s1", "s2"}

    def test_rename_apart(self):
        q = parse_query("<f(P) x V> :- <P a V>@db")
        renamed = q.rename_apart("_1")
        assert {v.name for v in renamed.all_variables()} == {"P_1", "V_1"}
        assert renamed != q

    def test_name_not_compared(self):
        a = parse_query("<f(P) x V> :- <P a V>@db", name="A")
        b = parse_query("<f(P) x V> :- <P a V>@db", name="B")
        assert a == b
        assert hash(a) == hash(b)

    def test_sizes_and_depth(self):
        q = parse_query("<f(P) x {<g(P) y V>}> :- "
                        "<P a {<X b {<Y c V>}>}>@db")
        assert query_size(q) == 2 + 3
        assert pattern_depth(q.body[0].pattern) == 3
        assert pattern_size(q.head) == 2

    def test_make_condition_default_source(self):
        condition = make_condition(parse_pattern("<P a V>"))
        assert condition.source == "db"


class TestSetPatternTerm:
    def test_groundness(self):
        empty = SetPatternTerm(SetPattern(()))
        assert empty.is_ground()
        with_var = SetPatternTerm(SetPattern((
            ObjectPattern(var("X"), Constant("a"), var("V")),)))
        assert not with_var.is_ground()
        assert {v.name for v in with_var.variables()} == {"X", "V"}

    def test_substitute(self):
        boxed = SetPatternTerm(SetPattern((
            ObjectPattern(var("X"), Constant("a"), var("V")),)))
        result = boxed.substitute({var("V"): Constant(1)})
        assert "1" in str(result)

    def test_unboxing_into_value_field(self):
        pattern = ObjectPattern(var("P"), Constant("a"), var("V"))
        subst = Substitution({var("V"): SetPatternTerm(SetPattern(()))})
        substituted = pattern.substitute(subst)
        assert isinstance(substituted.value, SetPattern)

    def test_boxed_pattern_rejected_in_label_field(self):
        pattern = ObjectPattern(var("P"), var("L"), Constant("v"))
        subst = Substitution({var("L"): SetPatternTerm(SetPattern(()))})
        with pytest.raises(ValidationError):
            pattern.substitute(subst)


class TestFreshVariables:
    def test_avoids_taken(self):
        taken = {Variable("W_1"), Variable("W_2")}
        fresh = fresh_variable_factory(taken)
        produced = fresh()
        assert produced not in {Variable("W_1"), Variable("W_2")}

    def test_successive_are_distinct(self):
        fresh = fresh_variable_factory(set())
        assert fresh() != fresh()


class TestPrinterEdges:
    def test_print_program(self):
        rules = parse_program(
            "<f(P) x 1> :- <P a V>@db ; <g(Q) y 2> :- <Q b W>@db")
        text = print_program(rules)
        assert text.count(":-") == 2
        assert parse_program(text) == rules

    def test_uppercase_constant_quoted(self):
        q = parse_query('<f(P) x "SIGMOD"> :- <P a "SIGMOD">@db')
        assert '"SIGMOD"' in print_query(q)
        assert parse_query(print_query(q)) == q

    def test_constant_with_spaces_quoted(self):
        assert print_term(Constant("A. Gupta")) == '"A. Gupta"'

    def test_and_keyword_quoted(self):
        # A constant spelled "and" would re-lex as the AND keyword.
        assert print_term(Constant("and")) == '"and"'

    def test_embedded_double_quote_degrades(self):
        printed = print_term(Constant('say "hi"'))
        assert printed.startswith('"')

    def test_function_term(self):
        assert print_term(fn("f", var("P"), Constant(7))) == "f(P,7)"


class TestSyntaxErrorFormatting:
    def test_location_attached(self):
        with pytest.raises(TslSyntaxError) as excinfo:
            parse_query("<f(P) x 1> :-\n  <P a V @db")
        assert "line 2" in str(excinfo.value)

    def test_line_and_column_fields(self):
        try:
            parse_query("<f(P) x 1> :- #")
        except TslSyntaxError as exc:
            assert exc.line == 1
            assert exc.column is not None
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")
