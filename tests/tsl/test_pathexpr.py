"""Tests for the regular path expression extension (Section 7)."""

import pytest

from repro.errors import TslSyntaxError
from repro.logic.terms import Variable
from repro.oem import build_database, obj
from repro.tsl import evaluate_program, validate
from repro.tsl.pathexpr import (expand_rpe_query, label_sequences,
                                parse_path_expression)


class TestParsing:
    def test_single_label(self):
        assert str(parse_path_expression("name")) == "name"

    def test_sequence(self):
        expr = parse_path_expression("person.name.last")
        assert str(expr) == "person.name.last"

    def test_alternation_and_grouping(self):
        expr = parse_path_expression("a.(b|c).d")
        assert label_sequences(expr, 3) == [("a", "b", "d"),
                                            ("a", "c", "d")]

    def test_star_plus_optional(self):
        assert parse_path_expression("(a)*")
        assert parse_path_expression("(a)+")
        assert parse_path_expression("(a)?")

    def test_wildcard(self):
        assert label_sequences(parse_path_expression("_"), 1) == [("_",)]

    def test_unbalanced_paren(self):
        with pytest.raises(TslSyntaxError):
            parse_path_expression("(a.b")

    def test_empty_label(self):
        with pytest.raises(TslSyntaxError):
            parse_path_expression("a..b")

    def test_trailing_junk(self):
        with pytest.raises(TslSyntaxError):
            parse_path_expression("a)")


class TestSequences:
    def test_star_bounded(self):
        expr = parse_path_expression("a.(b)*.c")
        assert label_sequences(expr, 4) == [
            ("a", "b", "b", "c"), ("a", "b", "c"), ("a", "c")]

    def test_plus_requires_one(self):
        expr = parse_path_expression("a.(b)+")
        assert label_sequences(expr, 3) == [("a", "b"), ("a", "b", "b")]

    def test_optional(self):
        expr = parse_path_expression("a.b?.c")
        assert label_sequences(expr, 3) == [("a", "b", "c"), ("a", "c")]

    def test_nested_groups(self):
        expr = parse_path_expression("(a.b|c)*.d")
        sequences = label_sequences(expr, 3)
        assert ("d",) in sequences
        assert ("a", "b", "d") in sequences
        assert ("c", "c", "d") in sequences

    def test_nullable_star_rejected(self):
        with pytest.raises(TslSyntaxError, match="nullable"):
            label_sequences(parse_path_expression("(a?)*"), 3)

    def test_bound_respected(self):
        expr = parse_path_expression("(a)+")
        assert all(len(seq) <= 5
                   for seq in label_sequences(expr, 5))


class TestExpansion:
    @pytest.fixture
    def deep_db(self):
        return build_database("db", [
            obj("part", [obj("part", [obj("part", [obj("name", "bolt")]),
                                      obj("name", "axle")]),
                         obj("name", "wheel")]),
        ])

    def test_rules_validate(self):
        rules = expand_rpe_query("part.(part)*.name", Variable("V"),
                                 max_depth=4)
        assert rules
        for rule in rules:
            validate(rule)

    def test_transitive_parts(self, deep_db):
        rules = expand_rpe_query("part.(part)*.name", Variable("V"),
                                 max_depth=5)
        answer = evaluate_program(rules, deep_db)
        names = {r.value for r in answer.root_objects()}
        assert names == {"wheel", "axle", "bolt"}

    def test_bound_truncates(self, deep_db):
        rules = expand_rpe_query("part.(part)*.name", Variable("V"),
                                 max_depth=2)
        answer = evaluate_program(rules, deep_db)
        names = {r.value for r in answer.root_objects()}
        assert names == {"wheel"}  # deeper matches are beyond the bound

    def test_wildcard_expansion(self, deep_db):
        rules = expand_rpe_query("part._", Variable("V"), max_depth=2)
        answer = evaluate_program(rules, deep_db)
        labels = {r.value for r in answer.root_objects()}
        assert "wheel" in labels

    def test_rewriting_composes_with_expansion(self):
        """Expanded RPE rules flow through the standard rewriter."""
        from repro.rewriting import rewrite
        from repro.tsl import parse_query
        # The view must expose the endpoint oid (c(X)) because the
        # expanded rule's head term hit(Root, End) mentions it.
        view = parse_query(
            "<v(P) row {<c(X) val N>}> :- "
            "<P part {<X name N>}>@db", name="V")
        [rule] = expand_rpe_query("part.name", Variable("V"), max_depth=2)
        result = rewrite(rule, {"V": view})
        assert len(result.rewritings) == 1
