"""Tests for the condition-ordering heuristic."""

import time

from repro.oem import identical
from repro.tsl import (condition_score, evaluate, order_conditions,
                       parse_query, plan_report)
from repro.tsl.evaluator import body_assignments
from repro.workloads import generate_bibliography


class TestOrdering:
    def test_selective_condition_first(self):
        q = parse_query(
            "<f(P) x T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<Y year 1997>}>@db")
        planned = order_conditions(q)
        assert "1997" in str(planned.body[0])

    def test_ground_oid_wins(self):
        q = parse_query(
            "<f(X) x V> :- <P pub {<X a V>}>@db AND "
            "<p1 pub {<Y b W>}>@db")
        planned = order_conditions(q)
        assert "p1" in str(planned.body[0])

    def test_connectivity_preferred(self):
        # After the selective year condition binds P, the connected
        # title condition should come before the unconnected one.
        q = parse_query(
            "<f(P) x T> :- <Q other {<Z zz V9>}>@db AND "
            "<P pub {<X title T>}>@db AND "
            "<P pub {<Y year 1997>}>@db")
        planned = order_conditions(q)
        rendered = [str(c) for c in planned.body]
        assert "1997" in rendered[0]
        assert "title" in rendered[1]

    def test_single_condition_untouched(self):
        q = parse_query("<f(P) x V> :- <P a V>@db")
        assert order_conditions(q) is q

    def test_scores_positive(self):
        q = parse_query("<f(P) x V> :- <P pub {<Y year 1997>}>@db")
        assert condition_score(q.body[0]) > 0

    def test_plan_report_shape(self):
        q = parse_query(
            "<f(P) x T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<Y year 1997>}>@db")
        report = plan_report(q)
        assert len(report) == 2
        assert all(isinstance(score, float) for _, score in report)


class TestSemanticsAndSpeed:
    def test_reordering_preserves_answers(self):
        db = generate_bibliography(100, seed=3)
        q = parse_query(
            "<f(P) hit T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<B booktitle sigmod>}>@db AND "
            "<P pub {<Y year 1997>}>@db")
        with_planner = evaluate(q, db)
        no_planner_assignments = body_assignments(q, db, reorder=False)
        with_planner_assignments = body_assignments(q, db, reorder=True)
        assert set(no_planner_assignments) == set(with_planner_assignments)
        assert len(with_planner.roots) == len(
            {a for a in with_planner_assignments})

    def test_reordering_not_slower_on_selective_join(self):
        db = generate_bibliography(800, seed=4)
        q = parse_query(
            "<f(P) hit T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<Y year 1997>}>@db AND "
            "<P pub {<B booktitle sigmod>}>@db")
        started = time.perf_counter()
        body_assignments(q, db, reorder=False)
        unplanned = time.perf_counter() - started
        started = time.perf_counter()
        body_assignments(q, db, reorder=True)
        planned = time.perf_counter() - started
        # Generous bound: the planner must never be pathological.
        assert planned < max(4 * unplanned, 0.5)
