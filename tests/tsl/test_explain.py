"""Tests for the evaluation explainer."""

from repro.oem import build_database, obj
from repro.tsl import explain, parse_query


def _db():
    return build_database("db", [
        obj("person", [obj("name", "ann"), obj("age", 31)], oid="p1"),
        obj("person", [obj("name", "bob")], oid="p2"),
    ])


class TestExplain:
    def test_rows_and_answer(self):
        q = parse_query("<f(P) x N> :- <P person {<X name N>}>@db")
        result = explain(q, _db())
        assert len(result.assignments) == 2
        names = {row["N"] for row in result.rows()}
        assert names == {"ann", "bob"}
        assert len(result.answer.roots) == 2

    def test_render_table(self):
        q = parse_query("<f(P) x N> :- <P person {<X name N>}>@db")
        text = explain(q, _db()).render()
        assert "N" in text and "ann" in text
        assert "2 assignment(s), 2 answer root(s)" in text

    def test_set_value_rendering(self):
        q = parse_query("<f(P) copy V> :- <P person V>@db")
        result = explain(q, _db())
        rendered = {row["V"] for row in result.rows()}
        assert any(value.startswith("{") for value in rendered)

    def test_empty_result(self):
        q = parse_query("<f(P) x 1> :- <P robot V>@db")
        text = explain(q, _db()).render()
        assert "no satisfying assignments" in text
