"""Tests for normal-form conversion and path extraction (Section 2)."""

from repro.tsl import (is_normal_form, is_single_path, normalize,
                       parse_query, print_query, query_paths,
                       single_path_count, split_pattern, parse_pattern)
from repro.tsl.normalize import path_to_condition


class TestNormalize:
    def test_q1_normalizes_to_q2(self):
        q1 = parse_query(
            "<f(P) female {<f(X) Y Z>}> :- "
            "<P person {<G gender female> <X Y Z>}>@db")
        q2 = parse_query(
            "<f(P) female {<f(X) Y Z>}> :- "
            "<P person {<G gender female>}>@db AND "
            "<P person {<X Y Z>}>@db")
        assert normalize(q1) == q2

    def test_already_normal_unchanged(self):
        q = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        assert normalize(q) == q

    def test_head_untouched(self):
        q = parse_query(
            "<f(P) r {<a(P) x 1> <b(P) y 2>}> :- <P p {<A u 1> <B v 2>}>@db")
        assert normalize(q).head == q.head

    def test_duplicate_conditions_removed(self):
        q = parse_query("<f(P) x 1> :- <P a V>@db AND <P a V>@db")
        assert len(normalize(q).body) == 1

    def test_three_way_split(self):
        q = parse_query("<f(P) x 1> :- <P p {<A a 1> <B b 2> <C c 3>}>@db")
        assert len(normalize(q).body) == 3

    def test_deep_branching(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<A a {<B b 1> <C c 2>}> <D d 3>}>@db")
        normalized = normalize(q)
        assert len(normalized.body) == 3
        assert is_normal_form(normalized)

    def test_idempotent(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<A a {<B b 1> <C c 2>}> <D d 3>}>@db")
        assert normalize(normalize(q)) == normalize(q)


class TestPredicates:
    def test_is_normal_form(self):
        assert is_normal_form(parse_query("<f(P) x 1> :- <P a V>@db"))
        assert not is_normal_form(
            parse_query("<f(P) x 1> :- <P a {<B b 1> <C c 2>}>@db"))

    def test_is_single_path(self):
        assert is_single_path(
            parse_query("<f(P) x 1> :- <P a {<B b {<C c V>}>}>@db"))
        assert not is_single_path(
            parse_query("<f(P) x 1> :- <P a V>@db AND <P b W>@db"))

    def test_single_path_count(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<A a 1> <B b 2>}>@db AND <Q q V>@db")
        assert single_path_count(q) == 3


class TestPaths:
    def test_path_structure(self):
        q = parse_query("<f(P) x 1> :- <P p {<X name {<Z last V>}>}>@db")
        paths = query_paths(q)
        assert len(paths) == 1
        path = paths[0]
        assert path.depth == 3
        assert [str(label) for _, label in path.steps] == \
            ["p", "name", "last"]
        assert path.source == "db"

    def test_empty_set_leaf(self):
        q = parse_query("<f(P) x 1> :- <P p {<X name {}>}>@db")
        path = query_paths(q)[0]
        assert path.depth == 2
        assert str(path.leaf) == "{}"

    def test_path_to_condition_round_trip(self):
        q = parse_query("<f(P) x 1> :- <P p {<X name {<Z last V>}>}>@db")
        path = query_paths(q)[0]
        assert path_to_condition(path) == q.body[0]

    def test_split_pattern(self):
        p = parse_pattern("<P p {<A a 1> <B b 2>}>")
        pieces = split_pattern(p)
        assert [str(x) for x in pieces] == \
            ["<P p {<A a 1>}>", "<P p {<B b 2>}>"]

    def test_path_str_is_parseable(self):
        q = parse_query("<f(P) x 1> :- <P p {<X name V>}>@db")
        assert "name" in str(query_paths(q)[0])
