"""Unit tests for the TSL tokenizer."""

import pytest

from repro.errors import TslSyntaxError
from repro.tsl.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text) if t.kind != "eof"]


class TestTokenize:
    def test_punctuation(self):
        assert texts("<>{}(),@") == list("<>{}(),@")

    def test_turnstile(self):
        assert kinds(":-") == ["turnstile", "eof"]

    def test_identifier(self):
        assert kinds("person") == ["ident", "eof"]

    def test_primed_identifier(self):
        assert texts("X' P''") == ["X'", "P''"]

    def test_hyphenated_identifier(self):
        assert texts("stan-student") == ["stan-student"]

    def test_dollar_identifier(self):
        assert texts("$YEAR") == ["$YEAR"]

    def test_and_keyword_case_insensitive(self):
        assert kinds("AND and And") == ["and", "and", "and", "eof"]

    def test_integers(self):
        tokens = list(tokenize("1997 -5"))
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("int", "1997"), ("int", "-5")]

    def test_double_quoted_string(self):
        tokens = list(tokenize('"A. Gupta"'))
        assert tokens[0].kind == "string"
        assert tokens[0].text == "A. Gupta"

    def test_single_quoted_string(self):
        tokens = list(tokenize("'hello world'"))
        assert tokens[0].text == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(TslSyntaxError, match="unterminated"):
            list(tokenize('"oops'))

    def test_comment_skipped(self):
        assert texts("a % comment here\nb") == ["a", "b"]

    def test_unexpected_character(self):
        with pytest.raises(TslSyntaxError, match="unexpected"):
            list(tokenize("#"))

    def test_line_and_column_tracking(self):
        tokens = list(tokenize("a\n  b"))
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_whole_query_token_stream(self):
        text = "<f(P) female V> :- <P person V>@db"
        assert kinds(text) == [
            "punct", "ident", "punct", "ident", "punct", "ident", "ident",
            "punct", "turnstile", "punct", "ident", "ident", "ident",
            "punct", "punct", "ident", "eof"]

    def test_eof_always_last(self):
        assert list(tokenize(""))[-1].kind == "eof"
