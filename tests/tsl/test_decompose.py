"""Tests for decomposition into graph component queries (Section 4)."""

from repro.tsl import decompose, decompose_program, parse_query
from repro.tsl.ast import SetPattern


class TestExample41:
    """Example 4.1 verbatim."""

    def setup_method(self):
        self.q14 = parse_query(
            "<l(X) l {<f(Y) m {<n(Z) n V>}>}> :- "
            "<X a {<Y b {<Z c V>}>}>@db")
        self.components = decompose(self.q14)

    def test_component_count(self):
        # one top + two member + three object rules
        assert len(self.components) == 6

    def test_kinds(self):
        kinds = [c.kind for c in self.components]
        assert kinds.count("top") == 1
        assert kinds.count("member") == 2
        assert kinds.count("object") == 3

    def test_top_rule(self):
        top = next(c for c in self.components if c.kind == "top")
        assert str(top.head_terms[0]) == "l(X)"

    def test_member_rules(self):
        members = {tuple(str(t) for t in c.head_terms)
                   for c in self.components if c.kind == "member"}
        assert members == {("l(X)", "f(Y)"), ("f(Y)", "n(Z)")}

    def test_object_rules(self):
        objects = {(str(c.head_terms[0]), str(c.head_terms[1]),
                    str(c.value))
                   for c in self.components if c.kind == "object"}
        assert objects == {
            ("l(X)", "l", "{}"),
            ("f(Y)", "m", "{}"),
            ("n(Z)", "n", "V"),
        }

    def test_bodies_are_shared(self):
        for component in self.components:
            assert component.body == self.q14.body

    def test_str_rendering(self):
        top = next(c for c in self.components if c.kind == "top")
        assert str(top).startswith("top(l(X)) :- ")


class TestGeneral:
    def test_atomic_head(self):
        q = parse_query("<f(P) x V> :- <P a V>@db")
        components = decompose(q)
        assert [c.kind for c in components] == ["top", "object"]
        obj_rule = components[1]
        assert str(obj_rule.value) == "V"

    def test_empty_set_head(self):
        q = parse_query("<f(P) x {}> :- <P a V>@db")
        obj_rule = decompose(q)[1]
        assert isinstance(obj_rule.value, SetPattern)

    def test_program_decomposition(self):
        rules = [
            parse_query("<f(P) x V> :- <P a V>@db"),
            parse_query("<g(P) y {<h(P) z W>}> :- <P b W>@db"),
        ]
        components = decompose_program(rules)
        assert len(components) == 2 + 4
