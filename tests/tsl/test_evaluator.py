"""Tests for TSL evaluation semantics (Section 2)."""

import pytest

from repro.errors import FusionConflictError, TslError
from repro.logic.terms import Constant, fn
from repro.oem import build_database, identical, obj, ref
from repro.tsl import (body_assignments, evaluate, evaluate_program,
                       parse_query)


@pytest.fixture
def people():
    return build_database("db", [
        obj("person", [obj("gender", "female", oid="g1"),
                       obj("name", "ann", oid="n1"),
                       obj("age", 31, oid="a1")], oid="p1"),
        obj("person", [obj("gender", "male", oid="g2"),
                       obj("name", "bob", oid="n2")], oid="p2"),
    ])


class TestQ1Semantics:
    """The worked example of Section 2."""

    def test_answer_shape(self, people):
        q = parse_query(
            "<f(P) female {<f2(X) Y Z>}> :- "
            "<P person {<G gender female> <X Y Z>}>@db")
        answer = evaluate(q, people)
        # One female person; her three subobjects are fused into f(p1).
        assert len(answer.roots) == 1
        root = answer.root_objects()[0]
        assert root.oid == fn("f", Constant("p1"))
        assert root.label == "female"
        assert sorted((c.label, c.value) for c in root.value) == [
            ("age", 31), ("gender", "female"), ("name", "ann")]

    def test_oids_are_terms_over_bindings(self, people):
        q = parse_query(
            "<f(P) female {<f2(X) Y Z>}> :- "
            "<P person {<G gender female> <X Y Z>}>@db")
        answer = evaluate(q, people)
        child_oids = {c.oid for c in answer.root_objects()[0].value}
        assert fn("f2", Constant("n1")) in child_oids


class TestMatching:
    def test_top_level_matches_roots_only(self):
        db = build_database("db", [obj("a", [obj("b", "v", oid="inner")])])
        q = parse_query("<f(X) found V> :- <X b V>@db")
        # "b" objects exist but are not roots: no match.
        assert len(evaluate(q, db).roots) == 0

    def test_label_variable(self, people):
        q = parse_query("<f(X) lab L> :- <P person {<X L V>}>@db")
        answer = evaluate(q, people)
        labels = {r.value for r in answer.root_objects()}
        assert labels == {"gender", "name", "age"}

    def test_constant_value_filter(self, people):
        q = parse_query("<f(P) hit 1> :- <P person {<G gender male>}>@db")
        answer = evaluate(q, people)
        assert [r.oid for r in answer.root_objects()] == \
            [fn("f", Constant("p2"))]

    def test_two_patterns_may_match_same_child(self, people):
        q = parse_query(
            "<f(P) x 1> :- <P person {<A gender V> <B gender W>}>@db")
        assignments = body_assignments(parse_query(
            "<f(P) x 1> :- <P person {<A gender V> <B gender W>}>@db"),
            people)
        # A and B can bind to the same gender object.
        assert len(assignments) == 2  # one per person
        assert len(evaluate(q, people).roots) == 2

    def test_join_across_conditions(self, people):
        q = parse_query(
            "<f(P) x 1> :- <P person {<G gender female>}>@db AND "
            "<P person {<A age 31>}>@db")
        assert len(evaluate(q, people).roots) == 1

    def test_join_on_value_variable(self):
        db = build_database("db", [
            obj("a", [obj("k", "shared")], oid="x1"),
            obj("b", [obj("k", "shared")], oid="x2"),
            obj("b", [obj("k", "other")], oid="x3"),
        ])
        q = parse_query("<f(A,B) pair V> :- "
                        "<A a {<K1 k V>}>@db AND <B b {<K2 k V>}>@db")
        answer = evaluate(q, db)
        assert [str(r.oid) for r in answer.root_objects()] == ["f(x1,x2)"]

    def test_empty_set_pattern_matches_any_set(self):
        db = build_database("db", [
            obj("a", [], oid="empty"),
            obj("a", [obj("x", 1)], oid="full"),
            obj("a", "atomic-one", oid="atom"),
        ])
        q = parse_query("<f(P) isset 1> :- <P a {}>@db")
        oids = {str(r.oid) for r in evaluate(q, db).root_objects()}
        assert oids == {"f(empty)", "f(full)"}

    def test_bound_oid_fast_path(self, people):
        q = parse_query("<f(P) x A> :- "
                        "<P person {<G gender female>}>@db AND "
                        "<P person {<X age A>}>@db")
        answer = evaluate(q, people)
        assert [r.value for r in answer.root_objects()] == [31]

    def test_ground_oid_condition(self, people):
        q = parse_query("<f(X) x V> :- <p1 person {<X name V>}>@db")
        assert len(evaluate(q, people).roots) == 1

    def test_unknown_source(self, people):
        q = parse_query("<f(P) x V> :- <P person V>@nowhere")
        with pytest.raises(TslError, match="nowhere"):
            evaluate(q, {"db": people})


class TestSetValues:
    def test_value_variable_binds_set_value(self, people):
        q = parse_query("<f(P) copy V> :- <P person V>@db")
        answer = evaluate(q, people)
        # The subgraphs hang off the constructed nodes with source oids.
        root = next(r for r in answer.root_objects()
                    if r.oid == fn("f", Constant("p1")))
        assert sorted(c.label for c in root.value) == \
            ["age", "gender", "name"]
        assert Constant("n1") in {c.oid for c in root.value}

    def test_set_values_equal_by_members(self):
        # Two distinct set objects with identical member sets are equal
        # values: a shared variable joins them.
        db = build_database("db", [
            obj("a", [ref("s1")], oid="x1"),
            obj("b", [ref("s1")], oid="x2"),
        ], extra=[obj("inner", "v", oid="s1")])
        q = parse_query("<f(A,B) same 1> :- <A a V>@db AND <B b V>@db")
        assert len(evaluate(q, db).roots) == 1

    def test_copy_of_cyclic_subgraph(self):
        db = build_database("db", [
            obj("top", [obj("loop", [ref("t")], oid="l1")], oid="t"),
        ])
        q = parse_query("<f(P) copy V> :- <P top V>@db")
        answer = evaluate(q, db)
        assert len(answer.roots) == 1
        # The cyclic source subgraph hangs off the answer.
        assert Constant("l1") in set(answer.oids())
        assert Constant("t") in set(answer.oids())


class TestFusion:
    def test_fusion_of_set_values(self, people):
        q = parse_query(
            "<f(G) by-gender {<i(P) person 1>}> :- "
            "<P person {<X gender G>}>@db")
        answer = evaluate(q, people)
        # Two persons, two genders here: each group has one member.
        assert len(answer.roots) == 2

    def test_fusion_groups_multiple_members(self):
        db = build_database("db", [
            obj("person", [obj("dept", "db")], oid="e1"),
            obj("person", [obj("dept", "db")], oid="e2"),
            obj("person", [obj("dept", "os")], oid="e3"),
        ])
        q = parse_query(
            "<f(D) group {<i(P) member 1>}> :- "
            "<P person {<X dept D>}>@db")
        answer = evaluate(q, db)
        by_size = sorted(len(r.value) for r in answer.root_objects())
        assert by_size == [1, 2]

    def test_conflicting_atomic_fusion_raises(self):
        db = build_database("db", [
            obj("person", [obj("x", 1)], oid="e1"),
        ])
        rules = [
            parse_query("<f(P) v 1> :- <P person {<X x 1>}>@db"),
            parse_query("<f(P) v 2> :- <P person {<X x 1>}>@db"),
        ]
        with pytest.raises(FusionConflictError):
            evaluate_program(rules, db)

    def test_conflicting_label_fusion_raises(self):
        db = build_database("db", [obj("person", [obj("x", 1)], oid="e1")])
        rules = [
            parse_query("<f(P) a 1> :- <P person {<X x 1>}>@db"),
            parse_query("<f(P) b 1> :- <P person {<X x 1>}>@db"),
        ]
        with pytest.raises(FusionConflictError):
            evaluate_program(rules, db)

    def test_atomic_set_conflict_raises(self):
        db = build_database("db", [obj("person", [obj("x", 1)], oid="e1")])
        rules = [
            parse_query("<f(P) v 1> :- <P person {<X x 1>}>@db"),
            parse_query("<f(P) v {<g(P) y 2>}> :- <P person {<X x 1>}>@db"),
        ]
        with pytest.raises(FusionConflictError):
            evaluate_program(rules, db)


class TestPrograms:
    def test_union_fuses_across_rules(self, people):
        rules = [
            parse_query("<f(P) rec {<g1(P) gender G>}> :- "
                        "<P person {<X gender G>}>@db"),
            parse_query("<f(P) rec {<g2(P) name N>}> :- "
                        "<P person {<X name N>}>@db"),
        ]
        answer = evaluate_program(rules, people)
        assert len(answer.roots) == 2
        for root in answer.root_objects():
            assert sorted(c.label for c in root.value) == \
                ["gender", "name"]

    def test_program_equals_single_when_disjoint(self, people):
        q = parse_query("<f(P) x G> :- <P person {<A gender G>}>@db")
        assert identical(evaluate(q, people),
                         evaluate_program([q], people))

    def test_multi_source(self, people):
        other = build_database("db2", [obj("dept", [obj("name", "cs")])])
        q = parse_query("<f(P,D) pair 1> :- "
                        "<P person {<G gender female>}>@db AND "
                        "<D dept {<N name cs>}>@db2")
        answer = evaluate(q, {"db": people, "db2": other})
        assert len(answer.roots) == 1

    def test_empty_result(self, people):
        q = parse_query("<f(P) x 1> :- <P person {<G gender robot>}>@db")
        answer = evaluate(q, people)
        assert len(answer.roots) == 0
        assert len(answer) == 0
