"""Unit tests for the TSL parser and printer round-trip."""

import pytest

from repro.errors import TslSyntaxError
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.tsl import (SetPattern, parse_pattern, parse_program, parse_query,
                       parse_term, print_query)


class TestTerms:
    def test_uppercase_is_variable(self):
        assert parse_term("P") == Variable("P")

    def test_lowercase_is_constant(self):
        assert parse_term("person") == Constant("person")

    def test_dollar_is_variable(self):
        assert parse_term("$YEAR") == Variable("$YEAR")

    def test_integer(self):
        assert parse_term("1997") == Constant(1997)

    def test_quoted_string(self):
        assert parse_term('"SIGMOD 97"') == Constant("SIGMOD 97")

    def test_function_term(self):
        assert parse_term("f(P,X)") == FunctionTerm(
            "f", (Variable("P"), Variable("X")))

    def test_nested_function_term(self):
        assert parse_term("f(g(X),a)") == FunctionTerm(
            "f", (FunctionTerm("g", (Variable("X"),)), Constant("a")))

    def test_primed_variable(self):
        assert parse_term("P'") == Variable("P'")


class TestPatterns:
    def test_flat_pattern(self):
        p = parse_pattern("<P person V>")
        assert p.oid == Variable("P")
        assert p.label == Constant("person")
        assert p.value == Variable("V")

    def test_set_pattern(self):
        p = parse_pattern("<P person {<G gender female>}>")
        assert isinstance(p.value, SetPattern)
        assert len(p.value.patterns) == 1

    def test_empty_set_pattern(self):
        p = parse_pattern("<P person {}>")
        assert p.value == SetPattern(())

    def test_multiple_nested(self):
        p = parse_pattern("<P p {<A a 1> <B b 2> <C c 3>}>")
        assert len(p.value.patterns) == 3

    def test_deep_nesting(self):
        p = parse_pattern("<P p {<X name {<Z last stanford>}>}>")
        inner = p.value.patterns[0]
        assert inner.label == Constant("name")
        assert inner.value.patterns[0].value == Constant("stanford")


class TestQueries:
    def test_q1_from_paper(self):
        q = parse_query(
            "<f(P) female {<f(X) Y Z>}> :- "
            "<P person {<G gender female> <X Y Z>}>@db")
        assert q.head.oid == FunctionTerm("f", (Variable("P"),))
        assert len(q.body) == 1
        assert q.body[0].source == "db"

    def test_multiple_conditions(self):
        q = parse_query("<f(P) x 1> :- <P a V>@db1 AND <P b W>@db2")
        assert [c.source for c in q.body] == ["db1", "db2"]
        assert q.sources() == {"db1", "db2"}

    def test_default_source(self):
        q = parse_query("<f(P) x 1> :- <P a V>")
        assert q.body[0].source == "db"

    def test_named_query(self):
        q = parse_query("<f(P) x V> :- <P a V>@db", name="V1")
        assert q.name == "V1"

    def test_multiline_and_comments(self):
        q = parse_query("""
            <f(P) x V> :-        % the head copies V
                <P a V>@db AND   % first condition
                <P b W>@db
        """)
        assert len(q.body) == 2

    def test_missing_turnstile(self):
        with pytest.raises(TslSyntaxError, match=":-"):
            parse_query("<f(P) x 1> <P a V>@db")

    def test_trailing_garbage(self):
        with pytest.raises(TslSyntaxError, match="trailing"):
            parse_query("<f(P) x 1> :- <P a V>@db extra")

    def test_unclosed_pattern(self):
        with pytest.raises(TslSyntaxError):
            parse_query("<f(P) x 1> :- <P a V @db")

    def test_missing_source_name(self):
        with pytest.raises(TslSyntaxError, match="source"):
            parse_query("<f(P) x 1> :- <P a V>@<")


class TestPrograms:
    def test_parse_program(self):
        rules = parse_program(
            "<f(P) x 1> :- <P a V>@db ; <g(P) y 2> :- <P b W>@db")
        assert len(rules) == 2

    def test_empty_chunks_skipped(self):
        rules = parse_program("<f(P) x 1> :- <P a V>@db ; ")
        assert len(rules) == 1


PAPER_QUERIES = [
    "<f(P) female {<f(X) Y Z>}> :- "
    "<P person {<G gender female> <X Y Z>}>@db",
    "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- <P' p {<X' Y' Z'>}>@db",
    "<f(P) stanford yes> :- <P p {<X Y leland>}>@db",
    "<f(P) stanford yes> :- <P p {<X Y {<Z last stanford>}>}>@db",
    "<f(P) stan-student V> :- "
    "<P p {<U university stanford>}>@db AND <P p V>@db",
    "<l(X) l {<f(Y) m {<n(Z) n V>}>}> :- <X a {<Y b {<Z c V>}>}>@db",
]


@pytest.mark.parametrize("text", PAPER_QUERIES)
def test_print_parse_round_trip(text):
    q = parse_query(text)
    assert parse_query(print_query(q)) == q


def test_round_trip_with_quoting():
    q = parse_query('<f(P) hit T> :- <P pub {<B booktitle "SIGMOD 97">}>@db '
                    'AND <P pub {<X title T>}>@db')
    assert parse_query(print_query(q)) == q


def test_round_trip_multiline_printer():
    q = parse_query(PAPER_QUERIES[0])
    assert parse_query(print_query(q, multiline=True)) == q
