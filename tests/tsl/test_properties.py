"""Property-based invariants across the TSL pipeline.

Queries are sampled from random databases (so they are satisfiable and
exercise joins, set values, and copy semantics), then every semantics-
preserving transformation is checked to actually preserve semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.oem import identical
from repro.oracle import random_query, sample_db_and_query as _sample
from repro.rewriting import chase, equivalent
from repro.tsl import (evaluate, normalize, parse_query, print_query,
                       query_paths, validate)
from repro.tsl.ast import Query

_SETTINGS = dict(max_examples=25, deadline=None)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sampled_queries_validate(seed):
    _, query = _sample(seed)
    validate(query)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_print_parse_round_trip(seed):
    _, query = _sample(seed)
    assert parse_query(print_query(query)) == query


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_print_parse_round_trip_on_synthetic_queries(seed):
    # random_query covers shapes database sampling never emits: quoted
    # constants, {} leaves, label variables, shared-root conditions.
    query = random_query(seed)
    assert parse_query(print_query(query)) == query


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_print_is_a_fixed_point_of_print_parse(seed):
    text = print_query(random_query(seed))
    assert print_query(parse_query(text)) == text


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_multiline_print_parses_to_the_same_query(seed):
    query = random_query(seed)
    assert parse_query(print_query(query, multiline=True)) == query


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_normalize_preserves_evaluation(seed):
    db, query = _sample(seed)
    assert identical(evaluate(query, db), evaluate(normalize(query), db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_condition_order_is_irrelevant(seed):
    db, query = _sample(seed)
    reversed_query = Query(query.head, tuple(reversed(query.body)),
                           name=query.name)
    assert identical(evaluate(query, db), evaluate(reversed_query, db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_chase_preserves_evaluation(seed):
    db, query = _sample(seed)
    chased = chase(query)
    assert identical(evaluate(query, db), evaluate(chased, db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_chase_is_equivalent_by_the_section4_test(seed):
    _, query = _sample(seed)
    assert equivalent(query, chase(query))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_normalize_is_equivalent_by_the_section4_test(seed):
    _, query = _sample(seed)
    assert equivalent(query, normalize(query))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rename_apart_preserves_evaluation(seed):
    db, query = _sample(seed)
    assert identical(evaluate(query, db),
                     evaluate(query.rename_apart("_x"), db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_paths_cover_every_condition(seed):
    _, query = _sample(seed)
    normalized = normalize(query)
    assert len(query_paths(normalized)) == len(normalized.body)
