"""Property-based invariants across the TSL pipeline.

Queries are sampled from random databases (so they are satisfiable and
exercise joins, set values, and copy semantics), then every semantics-
preserving transformation is checked to actually preserve semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.oem import identical
from repro.rewriting import chase, equivalent
from repro.tsl import (evaluate, normalize, parse_query, print_query,
                       query_paths, validate)
from repro.tsl.ast import Query
from repro.workloads import (RandomOemConfig, RandomQueryConfig,
                             generate_random_database, sample_query)

_SETTINGS = dict(max_examples=25, deadline=None)


def _sample(seed: int):
    db = generate_random_database(
        RandomOemConfig(roots=3, max_depth=4, max_fanout=3), seed=seed)
    query = sample_query(db, RandomQueryConfig(conditions=2, max_depth=3),
                         seed=seed + 1)
    return db, query


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sampled_queries_validate(seed):
    _, query = _sample(seed)
    validate(query)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_print_parse_round_trip(seed):
    _, query = _sample(seed)
    assert parse_query(print_query(query)) == query


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_normalize_preserves_evaluation(seed):
    db, query = _sample(seed)
    assert identical(evaluate(query, db), evaluate(normalize(query), db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_condition_order_is_irrelevant(seed):
    db, query = _sample(seed)
    reversed_query = Query(query.head, tuple(reversed(query.body)),
                           name=query.name)
    assert identical(evaluate(query, db), evaluate(reversed_query, db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_chase_preserves_evaluation(seed):
    db, query = _sample(seed)
    chased = chase(query)
    assert identical(evaluate(query, db), evaluate(chased, db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_chase_is_equivalent_by_the_section4_test(seed):
    _, query = _sample(seed)
    assert equivalent(query, chase(query))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_normalize_is_equivalent_by_the_section4_test(seed):
    _, query = _sample(seed)
    assert equivalent(query, normalize(query))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rename_apart_preserves_evaluation(seed):
    db, query = _sample(seed)
    assert identical(evaluate(query, db),
                     evaluate(query.rename_apart("_x"), db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_paths_cover_every_condition(seed):
    _, query = _sample(seed)
    normalized = normalize(query)
    assert len(query_paths(normalized)) == len(normalized.body)
