"""Tests for TSL well-formedness checks (Section 2)."""

import pytest

from repro.errors import (CyclicPatternError, OidDisciplineError, SafetyError,
                          ValidationError)
from repro.tsl import (data_variables, is_safe, oid_variables, parse_query,
                       validate)
from repro.logic.terms import Variable


class TestSafety:
    def test_safe_query_passes(self):
        validate(parse_query("<f(P) x V> :- <P a V>@db"))

    def test_unsafe_head_variable(self):
        with pytest.raises(SafetyError, match="W"):
            validate(parse_query("<f(P) x W> :- <P a V>@db"))

    def test_unsafe_nested_head_variable(self):
        with pytest.raises(SafetyError):
            validate(parse_query(
                "<f(P) x {<g(P) y W>}> :- <P a V>@db"))

    def test_is_safe_predicate(self):
        assert is_safe(parse_query("<f(P) x V> :- <P a V>@db"))
        assert not is_safe(parse_query("<f(P) x W> :- <P a V>@db"))


class TestHeadOids:
    def test_bare_variable_head_oid_rejected(self):
        with pytest.raises(ValidationError, match="bare variable"):
            validate(parse_query("<P x V> :- <P a V>@db"))

    def test_duplicate_head_oid_terms_rejected(self):
        with pytest.raises(ValidationError, match="unique"):
            validate(parse_query(
                "<f(P) x {<f(P) y V>}> :- <P a V>@db"))

    def test_distinct_function_terms_ok(self):
        validate(parse_query(
            "<f(P) x {<g(P) y V>}> :- <P a V>@db"))

    def test_paper_v1_head_is_legal(self, v1):
        validate(v1)


class TestOidDiscipline:
    def test_bare_oid_var_reused_as_label(self):
        # The <X Y {<Y Z W>}> example of Section 5: Y is both an oid and
        # a label variable.
        with pytest.raises(OidDisciplineError, match="Y"):
            validate(parse_query(
                "<f(X) x W> :- <X Y {<Y Z W>}>@db"))

    def test_function_term_args_are_exempt(self):
        # (V1) uses pp(P',Y') with the label variable Y' as an argument.
        validate(parse_query(
            "<g(P) p {<pp(P,Y) pr Y>}> :- <P p {<X Y Z>}>@db"))

    def test_oid_var_as_value_rejected(self):
        with pytest.raises(OidDisciplineError):
            validate(parse_query("<f(X) r X> :- <X a X>@db"))

    def test_oid_variables_helper(self):
        q = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        assert oid_variables(q) == {Variable("P"), Variable("X")}

    def test_data_variables_helper(self):
        q = parse_query("<f(P) x V> :- <P a {<X L V>}>@db")
        assert data_variables(q) == {Variable("L"), Variable("V")}


class TestAcyclicity:
    def test_acyclic_passes(self):
        validate(parse_query(
            "<f(X) r V> :- <X a {<Y b {<Z c V>}>}>@db"))

    def test_self_cycle_rejected(self):
        with pytest.raises(CyclicPatternError):
            validate(parse_query("<f(X) r 1> :- <X a {<X b V>}>@db"))

    def test_cross_condition_cycle_rejected(self):
        with pytest.raises(CyclicPatternError):
            validate(parse_query(
                "<f(X) r 1> :- <X a {<Y b V>}>@db AND <Y c {<X d W>}>@db"))

    def test_diamond_is_fine(self):
        # X reachable twice (through Y and Z) is a DAG, not a cycle.
        validate(parse_query(
            "<f(R) r 1> :- <R a {<Y b {<X c V>}>}>@db AND "
            "<R a {<Z d {<X c V>}>}>@db"))


class TestFieldShapes:
    def test_function_term_label_rejected(self):
        with pytest.raises(ValidationError, match="label"):
            validate(parse_query("<f(P) g(X) V> :- <P a {<X b V>}>@db"))

    def test_function_term_value_rejected(self):
        with pytest.raises(ValidationError, match="value"):
            validate(parse_query("<f(P) x g(P)> :- <P a V>@db"))

    def test_validate_returns_query(self):
        q = parse_query("<f(P) x V> :- <P a V>@db")
        assert validate(q) is q


class TestEdgeCases:
    """Regression coverage for corners of the well-formedness rules."""

    def test_function_term_oid_in_value_field(self):
        # A Skolem oid is only legal in the oid field, even when the
        # pattern carrying it sits in a body value position.
        with pytest.raises(ValidationError, match="value") as exc_info:
            validate(parse_query("<f(P) x g(P)> :- <P a {<X b g(P)>}>@db"))
        exc = exc_info.value
        assert exc.code == "TSL005"
        assert exc.span is not None and exc.span.start == (1, 9)

    def test_head_variable_missing_under_nesting(self):
        # W appears only inside the head's nested set pattern; the body
        # binds everything else, so the unsafe variable is the deep one.
        text = ("<f(P) people {<f(X) name W>}> :- "
                "<P group {<X member V>}>@db")
        with pytest.raises(SafetyError) as exc_info:
            validate(parse_query(text))
        exc = exc_info.value
        assert exc.code == "TSL001"
        assert "W" in str(exc)
        assert exc.span.start == (1, len("<f(P) people {<f(X) name ") + 1)

    def test_self_referential_oid_through_set_pattern(self):
        # X's value set contains a pattern whose oid is X again, two
        # levels down: the cycle must still be caught through nesting.
        text = "<f(X) r 1> :- <X a {<Y b {<X c V>}>}>@db"
        with pytest.raises(CyclicPatternError) as exc_info:
            validate(parse_query(text))
        exc = exc_info.value
        assert exc.code == "TSL003"
        assert exc.span is not None
        # The diagnostic points at the nested pattern that closes the
        # cycle, <X c V>.
        assert exc.span.start == (1, text.index("<X c V>") + 1)
