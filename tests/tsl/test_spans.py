"""Source spans: parser attachment, equality neutrality, error positions."""

import pytest

from repro.errors import TslSyntaxError, ValidationError
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.span import Span, excerpt_lines, format_location
from repro.tsl import parse_pattern, parse_program, parse_query
from repro.tsl.ast import ObjectPattern, SetPattern


class TestSpanPrimitive:
    def test_point_and_to(self):
        span = Span(2, 5, 2, 8)
        assert Span.point(2, 5) == Span(2, 5, 2, 6)
        assert span.to(Span(3, 1, 3, 4)) == Span(2, 5, 3, 4)
        assert span.start == (2, 5)

    def test_excerpt_caret_width(self):
        lines = excerpt_lines("<P a V>@db", Span(1, 4, 1, 7), prefix="")
        assert lines == ["<P a V>@db", "   ^^^"]

    def test_excerpt_outside_text(self):
        assert excerpt_lines("one", Span(5, 1, 5, 2)) == []

    def test_format_location(self):
        assert format_location(Span(3, 7, 3, 9), "q.tsl") == "q.tsl:3:7"
        assert format_location(None, "q.tsl") == "q.tsl"


class TestParserSpans:
    def test_term_spans(self):
        query = parse_query("<f(P) x V> :- <P ab V>@db")
        cond_pattern = query.body[0].pattern
        assert cond_pattern.oid.span == Span(1, 16, 1, 17)
        assert cond_pattern.label.span == Span(1, 18, 1, 20)
        assert cond_pattern.value.span == Span(1, 21, 1, 22)

    def test_string_constant_span_includes_quotes(self):
        pattern = parse_pattern('<P a "hi there">')
        assert pattern.value.span == Span(1, 6, 1, 16)

    def test_function_term_span(self):
        query = parse_query("<f(P) x V> :- <P a V>@db")
        assert query.head.oid.span == Span(1, 2, 1, 6)

    def test_pattern_spans_cover_brackets(self):
        pattern = parse_pattern("<P a {<X b V>}>")
        assert pattern.span == Span(1, 1, 1, 16)
        inner = pattern.value
        assert isinstance(inner, SetPattern)
        assert inner.span == Span(1, 6, 1, 15)
        assert inner.patterns[0].span == Span(1, 7, 1, 14)

    def test_condition_span_extends_to_source(self):
        query = parse_query("<f(V) x V> :- <P a V>@db")
        assert query.body[0].span == Span(1, 15, 1, 25)

    def test_query_span(self):
        text = "<f(P) x V> :- <P a V>@db"
        query = parse_query(text)
        assert query.span == Span(1, 1, 1, len(text) + 1)

    def test_multiline_spans(self):
        text = "<f(P) x V> :-\n    <P a V>@db"
        query = parse_query(text)
        assert query.body[0].span == Span(2, 5, 2, 15)
        assert query.body[0].pattern.oid.span == Span(2, 6, 2, 7)


class TestSpansAreMetadata:
    def test_spans_do_not_affect_equality(self):
        with_span = parse_query("<f(P) x V> :- <P a V>@db")
        without = parse_query("<f(P)   x   V> :-   <P a V>@db")
        assert with_span == without
        assert (with_span.body[0].pattern.oid.span
                != without.body[0].pattern.oid.span)

    def test_spans_do_not_affect_hashing(self):
        a = Variable("X", span=Span(1, 1, 1, 2))
        b = Variable("X")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_spans_absent_from_repr(self):
        assert "span" not in repr(Variable("X", span=Span(1, 1, 1, 2)))
        assert "span" not in repr(parse_query("<f(P) x V> :- <P a V>@db"))

    def test_substitute_preserves_spans(self):
        from repro.logic.unify import Substitution
        query = parse_query("<f(P) x V> :- <P a V>@db")
        subst = Substitution({Variable("V"): Constant("c")})
        renamed = query.substitute(subst)
        assert renamed.span == query.span
        assert renamed.body[0].pattern.oid.span == Span(1, 16, 1, 17)
        assert renamed.head.oid.span == query.head.oid.span

    def test_function_term_substitute_keeps_span(self):
        from repro.logic.unify import Substitution
        term = FunctionTerm("f", (Variable("P"),), span=Span(1, 2, 1, 6))
        out = term.substitute(Substitution({Variable("P"): Constant("c")}))
        assert out.span == Span(1, 2, 1, 6)


class TestSyntaxErrorPositions:
    def test_unexpected_character(self):
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_query("<f(P) x V> :- <P a V>@@db")
        exc = exc_info.value
        assert (exc.line, exc.column) == (1, 23)
        assert "line 1, column 23" in str(exc)
        assert "^" in str(exc)

    def test_error_message_includes_source_line(self):
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_query("<f(P) x V> :- <P a V@db")
        assert "<f(P) x V> :- <P a V@db" in str(exc_info.value)

    def test_error_on_second_line(self):
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_query("<f(P) x V> :-\n    <P a ?>@db")
        exc = exc_info.value
        assert exc.line == 2
        assert "    <P a ?>@db" in str(exc)

    def test_eof_error_still_positioned(self):
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_query("<f(P) x V> :- <P a V")
        exc = exc_info.value
        assert "end of input" in str(exc)
        assert exc.line == 1

    def test_program_errors_use_absolute_positions(self):
        text = "<f(P) x V> :- <P a V>@db ;\n<g(Q) y W> :- <Q b W>@@db"
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_program(text)
        exc = exc_info.value
        assert (exc.line, exc.column) == (2, 23)
        assert "<g(Q) y W> :- <Q b W>@@db" in str(exc)

    def test_program_error_mid_line(self):
        text = "<f(P) x V> :- <P a V>@db ; <g(Q) y W> :- <Q b ?>@db"
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_program(text)
        exc = exc_info.value
        assert (exc.line, exc.column) == (1, 47)

    def test_exception_carries_span(self):
        with pytest.raises(TslSyntaxError) as exc_info:
            parse_query("<f(P) x V> :- <P a V>@@db")
        assert exc_info.value.span == Span(1, 23, 1, 24)


class TestValidationErrorSpans:
    def test_validation_error_has_span_and_code(self):
        from repro.tsl import validate
        with pytest.raises(ValidationError) as exc_info:
            validate(parse_query("<f(P) x W> :- <P a V>@db"))
        exc = exc_info.value
        assert exc.code == "TSL001"
        assert exc.span == Span(1, 9, 1, 10)

    def test_hand_built_ast_validation_spanless(self):
        from repro.tsl import validate
        from repro.tsl.ast import Condition, Query
        query = Query(
            ObjectPattern(FunctionTerm("f", (Variable("P"),)),
                          Constant("x"), Variable("W")),
            (Condition(ObjectPattern(Variable("P"), Constant("a"),
                                     Variable("V"))),))
        with pytest.raises(ValidationError) as exc_info:
            validate(query)
        assert exc_info.value.span is None
        assert exc_info.value.code == "TSL001"
