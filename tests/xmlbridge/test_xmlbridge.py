"""Tests for the XML <-> OEM bridge and DTD extraction."""

import pytest

from repro.errors import ConstraintError, OemError
from repro.oem import bisimilar, build_database, obj, ref
from repro.tsl import evaluate, parse_query
from repro.xmlbridge import (dtd_from_document, dtd_from_file_text,
                             extract_internal_dtd, oem_to_xml,
                             xml_fragments_to_oem, xml_to_oem)

DOC = """
<people>
  <p id="1">
    <name><last>stanford</last><first>leland</first></name>
    <phone>650-1111</phone>
  </p>
  <p id="2">
    <name><last>gupta</last></name>
    <phone>650-2222</phone>
  </p>
</people>
"""


class TestXmlToOem:
    def test_structure(self):
        db = xml_to_oem(DOC)
        [root] = db.root_objects()
        assert root.label == "people"
        assert len(root.subobjects("p")) == 2

    def test_text_elements_become_atomic(self):
        db = xml_to_oem(DOC)
        person = db.root_objects()[0].subobjects("p")[0]
        name = person.subobjects("name")[0]
        last = name.subobjects("last")[0]
        assert last.is_atomic
        assert last.value == "stanford"

    def test_numeric_coercion(self):
        db = xml_to_oem("<r><n>42</n><s>abc</s></r>")
        root = db.root_objects()[0]
        assert root.subobjects("n")[0].value == 42
        assert root.subobjects("s")[0].value == "abc"

    def test_attributes_become_subobjects(self):
        db = xml_to_oem(DOC)
        person = db.root_objects()[0].subobjects("p")[0]
        ids = person.subobjects("id")
        assert len(ids) == 1 and ids[0].value == 1

    def test_mixed_content_keeps_text(self):
        db = xml_to_oem("<r>hello<child>x</child></r>")
        root = db.root_objects()[0]
        assert root.subobjects("#text")[0].value == "hello"

    def test_oids_are_stable_paths(self):
        db1 = xml_to_oem(DOC)
        db2 = xml_to_oem(DOC)
        assert set(db1.oids()) == set(db2.oids())

    def test_malformed_xml(self):
        with pytest.raises(OemError, match="malformed"):
            xml_to_oem("<unclosed>")

    def test_fragments(self):
        db = xml_fragments_to_oem(["<a>1</a>", "<b>2</b>"])
        assert len(db.roots) == 2

    def test_imported_data_is_queryable(self):
        db = xml_to_oem(DOC)
        q = parse_query(
            "<f(P) hit F> :- "
            "<R people {<P p {<N name {<L last stanford>}>}>}>@db AND "
            "<R people {<P p {<N name {<G first F>}>}>}>@db")
        answer = evaluate(q, db)
        assert [r.value for r in answer.root_objects()] == ["leland"]


class TestOemToXml:
    def test_round_trip_bisimilar(self):
        db = xml_to_oem("<r><a>1</a><b><c>x</c></b></r>")
        back = xml_to_oem(oem_to_xml(db))
        assert bisimilar(db, back)

    def test_multiple_roots_wrapped(self):
        db = build_database("db", [obj("a", "1"), obj("b", "2")])
        text = oem_to_xml(db)
        assert text.startswith("<oem>")

    def test_cycle_rejected(self):
        db = build_database("db", [
            obj("a", [obj("b", [ref("t")])], oid="t"),
        ])
        with pytest.raises(OemError, match="cyclic"):
            oem_to_xml(db)

    def test_shared_subobjects_duplicated(self):
        db = build_database("db", [
            obj("r", [obj("a", [ref("s")]), obj("b", [ref("s")])]),
        ], extra=[obj("leaf", "v", oid="s")])
        text = oem_to_xml(db)
        assert text.count("<leaf>") == 2

    def test_no_roots_rejected(self):
        from repro.oem import OemDatabase
        with pytest.raises(OemError, match="roots"):
            oem_to_xml(OemDatabase("db"))


class TestDtdExtraction:
    DOC_WITH_DTD = """<?xml version="1.0"?>
    <!DOCTYPE p [
      <!ELEMENT p (name, phone)>
      <!ELEMENT name CDATA>
      <!ELEMENT phone CDATA>
    ]>
    <p><name>x</name><phone>1</phone></p>
    """

    def test_extract_internal_subset(self):
        subset = extract_internal_dtd(self.DOC_WITH_DTD)
        assert "<!ELEMENT p" in subset

    def test_dtd_from_document(self):
        dtd = dtd_from_document(self.DOC_WITH_DTD)
        assert dtd.functional_child("p", "name")

    def test_no_doctype_returns_none(self):
        assert dtd_from_document("<p/>") is None

    def test_dtd_from_file_text(self):
        dtd = dtd_from_file_text("<!ELEMENT a (b?)> <!ELEMENT b CDATA>")
        assert dtd.functional_child("a", "b")

    def test_garbage_file_rejected(self):
        with pytest.raises(ConstraintError):
            dtd_from_file_text("nothing here")
