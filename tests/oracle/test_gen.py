"""Case generation: determinism, budgets, profiles, sampled views."""

import pytest

from repro.oem import identical
from repro.oracle import PROFILES, generate_case, sample_view
from repro.oracle.corpus import case_to_json
from repro.tsl import evaluate, validate
from repro.tsl.ast import query_size
from repro.workloads import RandomOemConfig, generate_random_database


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_generation_is_deterministic(profile):
    config = PROFILES[profile]
    left = generate_case(42, config)
    right = generate_case(42, config)
    assert case_to_json(left) == case_to_json(right)
    assert identical(left.db, right.db)


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", range(6))
def test_cases_respect_budgets_and_are_wellformed(profile, seed):
    config = PROFILES[profile]
    case = generate_case(seed, config)
    assert case.profile == profile
    assert query_size(case.query) <= config.max_query_size
    if not config.dtd_constrained:
        assert case.db.stats()["objects"] <= config.max_db_objects
    validate(case.query)
    for view in case.views.values():
        validate(view)
    # The exposing view is always present: completeness is checkable.
    assert "V" in case.views
    assert case.expect_rewriting


@pytest.mark.parametrize("seed", range(10))
def test_generated_query_is_satisfiable(seed):
    case = generate_case(seed)
    assert evaluate(case.query, case.db).roots


def test_profiles_differ():
    seen = {case_to_json(generate_case(5, PROFILES[p]))["query"]
            for p in PROFILES}
    assert len(seen) > 1


@pytest.mark.parametrize("seed", range(12))
def test_sampled_views_are_nonempty_on_their_database(seed):
    db = generate_random_database(
        RandomOemConfig(roots=2, max_depth=3, max_fanout=2), seed=seed)
    view = sample_view(db, seed)
    if view is None:  # no atomic chain sampled: allowed, nothing to check
        return
    validate(view)
    assert evaluate(view, db, answer_name="W").roots
