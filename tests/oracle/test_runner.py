"""Campaign mechanics: rotation, budgets, reports, corpus persistence."""

import json

from repro.oracle import (DEFAULT_PROFILE_ROTATION, FuzzConfig, FuzzReport,
                          load_corpus, run_fuzz)


def test_profiles_rotate_per_iteration():
    report = run_fuzz(FuzzConfig(seed=0, iterations=len(
        DEFAULT_PROFILE_ROTATION), oracles=("semantic",)))
    assert report.ok
    assert report.iterations_run == len(DEFAULT_PROFILE_ROTATION)


def test_single_oracle_selection():
    report = run_fuzz(FuzzConfig(seed=1, iterations=4,
                                 oracles=("containment",)))
    assert set(report.checks) == {"containment"}
    assert report.checks["containment"] > 0


def test_unknown_oracle_rejected():
    try:
        run_fuzz(FuzzConfig(oracles=("nonsense",)))
    except ValueError as exc:
        assert "nonsense" in str(exc)
    else:
        raise AssertionError("expected ValueError")


def test_budget_stops_early():
    report = run_fuzz(FuzzConfig(seed=0, iterations=10_000,
                                 budget_seconds=0.0))
    assert report.iterations_run < 10_000


def test_report_json_is_serializable():
    report = run_fuzz(FuzzConfig(seed=2, iterations=4))
    data = json.loads(json.dumps(report.to_json()))
    assert data["ok"] is True
    assert data["iterations"] == 4
    assert set(data["checks"]) == {"containment", "index", "memo",
                                   "metamorphic", "persist", "semantic",
                                   "signature"}
    assert data["failures"] == []


def test_summary_mentions_status_and_counts():
    report = FuzzReport(iterations_run=3, elapsed_seconds=0.5,
                        checks={"semantic": 9})
    assert "OK" in report.summary()
    assert "semantic=9" in report.summary()


def test_green_campaign_writes_no_corpus(tmp_path):
    report = run_fuzz(FuzzConfig(seed=3, iterations=4,
                                 corpus_dir=str(tmp_path)))
    assert report.ok
    assert load_corpus(str(tmp_path)) == []
