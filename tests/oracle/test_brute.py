"""The brute-force mapping enumerator against the engine, and by hand.

``brute_mappings``/``brute_coverage`` re-derive containment mappings by
exhaustive path-to-path assignment, sharing no code with
``repro.rewriting.mappings``.  Equality of the two on random inputs is
the containment oracle's core check; here the same comparison runs as a
property test, plus hand-checked fixtures that pin the expected mapping
sets themselves (so a bug common to both engines would still be caught).
"""

from hypothesis import given, settings, strategies as st

from repro.logic.subst import Substitution
from repro.logic.terms import Variable
from repro.oracle import (brute_coverage, brute_mappings,
                          brute_query_maps_into, generate_case, sample_view)
from repro.rewriting import chase
from repro.rewriting.mappings import find_mappings
from repro.tsl import parse_query

_SETTINGS = dict(max_examples=25, deadline=None)


def _engine_mappings(view, query):
    return {m.subst for m in find_mappings(view, query)}


def test_identity_mapping_on_equal_queries():
    query = parse_query("<f(X) a V> :- <X a V>@db")
    identity = Substitution({Variable("X"): Variable("X"),
                             Variable("V"): Variable("V")})
    assert identity in brute_mappings(query, query)


def test_mapping_binds_view_variables_onto_query_constants():
    view = parse_query("<v(X) row V> :- <X a V>@db")
    query = parse_query("<f(X) a 1> :- <X a 7>@db")
    mappings = brute_mappings(view, query)
    assert any(m.get(Variable("V")) is not None for m in mappings)


def test_no_mapping_on_label_mismatch():
    view = parse_query("<v(X) row V> :- <X a V>@db")
    query = parse_query("<f(X) a V> :- <X b V>@db")
    assert brute_mappings(view, query) == set()


def test_set_mapping_into_longer_path():
    view = parse_query("<v(X) row V> :- <X a V>@db")
    query = parse_query("<f(X) a V> :- <X a {<Y b V>}>@db")
    assert brute_mappings(view, query)
    assert not brute_query_maps_into(query, view)


def test_empty_set_leaf_maps_into_nonempty_set():
    view = parse_query("<v(X) row 1> :- <X a {}>@db")
    query = parse_query("<f(X) a V> :- <X a {<Y b V>}>@db")
    assert brute_mappings(view, query)
    # ... but not into a plain leaf variable: a variable leaf does not
    # guarantee the object has a set value.
    atom = parse_query("<f(X) a V> :- <X a V>@db")
    assert brute_mappings(view, atom) == set()


def test_sources_must_agree():
    view = parse_query("<v(X) row V> :- <X a V>@other")
    query = parse_query("<f(X) a V> :- <X a V>@db")
    assert brute_mappings(view, query) == set()


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_brute_agrees_with_engine_on_exposing_views(seed):
    case = generate_case(seed)
    target = chase(case.query)
    for view in case.views.values():
        chased = chase(view)
        assert brute_mappings(chased, target) == \
            _engine_mappings(chased, target)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_brute_coverage_agrees_with_engine(seed):
    case = generate_case(seed)
    target = chase(case.query)
    view = sample_view(case.db, seed)
    if view is None:
        return
    chased = chase(view)
    for mapping in find_mappings(chased, target):
        assert brute_coverage(chased, target, mapping.subst) == \
            mapping.covers
