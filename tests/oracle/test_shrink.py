"""The shrinker minimizes under a predicate without breaking the case."""

from repro.oracle import generate_case, shrink_case
from repro.tsl import evaluate, validate


def test_shrinks_to_predicate_floor():
    case = generate_case(7)
    shrunk = shrink_case(case, lambda c: len(c.query.body) >= 1)
    assert len(shrunk.query.body) == 1
    assert not shrunk.views  # views are irrelevant to this predicate
    validate(shrunk.query)


def test_keeps_reductions_that_preserve_the_predicate_only():
    case = generate_case(3)
    # Predicate: the query still has answers on the database.
    predicate = lambda c: bool(evaluate(c.query, c.db).roots)  # noqa: E731
    assert predicate(case)
    shrunk = shrink_case(case, predicate)
    assert predicate(shrunk)
    assert len(list(shrunk.db.oids())) <= len(list(case.db.oids()))


def test_database_reductions_drop_unreachable_objects():
    case = generate_case(11)
    shrunk = shrink_case(case, lambda c: True)
    reachable = set(shrunk.db.reachable_oids())
    assert set(shrunk.db.oids()) <= reachable | set(shrunk.db.roots)


def test_crashing_reductions_are_skipped():
    case = generate_case(5)

    def fragile(c):
        if len(c.query.body) < len(case.query.body):
            raise RuntimeError("boom")
        return True

    shrunk = shrink_case(case, fragile)
    assert len(shrunk.query.body) == len(case.query.body)


def test_respects_attempt_budget():
    case = generate_case(9)
    calls = []

    def predicate(c):
        calls.append(1)
        return True

    shrink_case(case, predicate, max_attempts=5)
    assert len(calls) <= 6
