"""Corpus files: round trips, dedup, replay of checked-in regressions."""

import os

import pytest

from repro.oem import identical
from repro.oracle import (ORACLES, case_from_json, case_to_json,
                          generate_case, load_case, load_corpus, run_oracle,
                          save_case)
from repro.tsl import print_query

CHECKED_IN = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")


@pytest.mark.parametrize("seed", range(6))
def test_roundtrip_preserves_everything(seed):
    case = generate_case(seed)
    data = case_to_json(case)
    back = case_from_json(data)
    assert identical(back.db, case.db)
    assert print_query(back.query) == print_query(case.query)
    assert {n: print_query(v) for n, v in back.views.items()} == \
        {n: print_query(v) for n, v in case.views.items()}
    assert back.seed == case.seed
    assert back.profile == case.profile
    assert back.conjunctive == case.conjunctive
    assert back.expect_rewriting == case.expect_rewriting
    # Views keep their names -- compositions depend on them.
    for name, view in back.views.items():
        assert view.name == name


def test_unsupported_version_rejected():
    data = case_to_json(generate_case(0))
    data["version"] = 999
    with pytest.raises(ValueError):
        case_from_json(data)


def test_save_dedups_identical_and_suffixes_different(tmp_path):
    a = generate_case(1)
    b = generate_case(2)
    path_a = save_case(a, str(tmp_path), "bug")
    again = save_case(a, str(tmp_path), "bug")
    path_b = save_case(b, str(tmp_path), "bug")
    assert path_a == again
    assert path_b != path_a
    assert len(load_corpus(str(tmp_path))) == 2


def test_save_sanitizes_hostile_stems(tmp_path):
    path = save_case(generate_case(3), str(tmp_path), "a/b: weird*stem")
    assert os.path.dirname(path) == str(tmp_path)
    assert os.path.exists(path)


def test_checked_in_corpus_is_green():
    """Every regression case in tests/corpus passes every oracle."""
    corpus = load_corpus(CHECKED_IN)
    assert corpus, "tests/corpus must contain regression cases"
    for path, case in corpus:
        for name in sorted(ORACLES):
            result = run_oracle(ORACLES[name](), case)
            assert not result.failures, \
                f"{os.path.basename(path)} [{name}]: " + \
                "; ".join(map(str, result.failures))
