"""The oracles are green on the real engine and catch planted bugs.

The mutation tests are the calibration for the whole subsystem: each
deliberately breaks one engine layer (a chase rule, the equivalence
test, the mapping enumerator) and asserts that a short fuzzing campaign
reports a failure -- with a shrunk counterexample of at most 5 body
conditions.  An oracle that stays green under mutation tests nothing.
"""

import importlib

import pytest

from repro.logic.terms import Constant
from repro.oracle import (ORACLES, FuzzConfig, generate_case, run_fuzz,
                          run_oracle)

# repro.rewriting re-exports `chase` (the function), shadowing the
# submodule attribute -- resolve the modules explicitly for monkeypatching.
chase_mod = importlib.import_module("repro.rewriting.chase")
equivalence_mod = importlib.import_module("repro.rewriting.equivalence")
mappings_mod = importlib.import_module("repro.rewriting.mappings")
session_mod = importlib.import_module("repro.rewriting.session")
signature_mod = importlib.import_module("repro.analysis.viewset.signature")
index_mod = importlib.import_module("repro.rewriting.index")
durable_mod = importlib.import_module("repro.storage.durable")
cachestore_mod = importlib.import_module("repro.storage.cachestore")
maintenance_mod = importlib.import_module("repro.storage.maintenance")


@pytest.mark.parametrize("oracle_name", sorted(ORACLES))
@pytest.mark.parametrize("seed", range(8))
def test_oracles_green_on_real_engine(oracle_name, seed):
    case = generate_case(seed)
    result = run_oracle(ORACLES[oracle_name](), case)
    assert not result.failures, "\n".join(map(str, result.failures))
    assert result.checks > 0


def test_campaign_green_on_real_engine():
    report = run_fuzz(FuzzConfig(seed=7, iterations=24))
    assert report.ok, "\n".join(f.message for f in report.failures)
    assert report.iterations_run == 24
    for name in ORACLES:
        assert report.checks[name] > 0


def _assert_caught(report, max_conditions=5):
    assert not report.ok, "mutation survived the campaign undetected"
    assert all(f.conditions <= max_conditions for f in report.failures), \
        [f.conditions for f in report.failures]


def test_broken_chase_rule_is_caught_and_shrunk(monkeypatch):
    # Break rule 3's reduction step: silently drop a live path.
    monkeypatch.setattr(
        chase_mod, "_drop_subsumed_empty_paths",
        lambda paths: paths[:-1] if len(paths) > 1 else paths)
    report = run_fuzz(FuzzConfig(seed=0, iterations=16))
    _assert_caught(report)


def test_broken_equivalence_is_caught(monkeypatch):
    # Equivalence that rejects everything must trip the self-checks
    # (a query is always equivalent to its own chase / normal form).
    monkeypatch.setattr(equivalence_mod, "components_subsumed",
                        lambda *args, **kwargs: False)
    report = run_fuzz(FuzzConfig(seed=0, iterations=8, shrink=False))
    assert not report.ok
    invariants = {f.invariant for f in report.failures}
    assert invariants & {"chase-equivalent", "normalize-equivalent",
                         "minimize-equivalent", "rewriting-complete"}


def test_sloppy_mapping_match_is_caught(monkeypatch):
    # An enumerator that tolerates constant mismatches finds extra
    # mappings -- but only on the exhaustive scan, because the path
    # index statically prunes exactly those constant-clash targets
    # before the sloppy matcher ever sees them.  The index oracle's
    # scan-vs-indexed parity check is what trips; with the index
    # disabled the brute-force cross-check catches it the old way.
    orig = mappings_mod.match

    def sloppy(a, b, subst=None):
        out = orig(a, b, subst)
        if out is None and isinstance(a, Constant) \
                and isinstance(b, Constant):
            return subst
        return out

    monkeypatch.setattr(mappings_mod, "match", sloppy)
    report = run_fuzz(FuzzConfig(seed=0, iterations=8, shrink=False))
    assert not report.ok
    invariants = {f.invariant for f in report.failures}
    assert invariants & {"mappings-differ", "indexed-mappings-differ"}


def test_corrupted_memo_hit_is_caught(monkeypatch):
    # A result memo that serves the wrong value on a hit only shows up
    # on a warm session -- exactly the memo oracle's second phase.
    from repro.rewriting.rewriter import RewriteResult

    orig = session_mod.RewriteSession.lookup_result

    def corrupted(self, query, flags, **kwargs):
        value = orig(self, query, flags, **kwargs)
        if value is not None:
            result, explanation = value
            if result.rewritings:
                return RewriteResult([], result.stats), explanation
        return value

    monkeypatch.setattr(session_mod.RewriteSession, "lookup_result",
                        corrupted)
    report = run_fuzz(FuzzConfig(seed=0, iterations=8,
                                 oracles=("memo",), shrink=False))
    assert not report.ok
    assert {f.invariant for f in report.failures} \
        == {"rewrite-warm-differs"}


def test_memo_oracle_compares_seeded_corpus(monkeypatch):
    # The green direction of satellite 4: a seeded campaign of the memo
    # oracle alone -- memoized (cold + warm) and unmemoized rewrite()
    # agree on every generated case.
    report = run_fuzz(FuzzConfig(seed=31, iterations=12,
                                 oracles=("memo",)))
    assert report.ok, "\n".join(f.message for f in report.failures)
    assert report.checks["memo"] >= 24     # >= 2 rewrite checks per case


def test_overeager_prefilter_is_caught(monkeypatch):
    # A signature pre-filter that prunes every view silently discards
    # real rewritings; the signature oracle reports the parity break
    # (and the brute-force soundness check refutes the verdicts too).
    monkeypatch.setattr(signature_mod.ViewSignature, "admissible_for",
                        lambda self, profile: False)
    report = run_fuzz(FuzzConfig(seed=0, iterations=8,
                                 oracles=("signature",), shrink=False))
    assert not report.ok
    invariants = {f.invariant for f in report.failures}
    assert invariants & {"prefilter-parity", "prefilter-unsound"}


def test_signature_oracle_parity_campaign():
    # Acceptance criterion: the pruning-parity oracle stays green over
    # >= 500 seeded iterations (pre-filter on vs off canonically
    # identical, and every inadmissible view brute-force refuted).
    report = run_fuzz(FuzzConfig(seed=7, iterations=500,
                                 oracles=("signature",)))
    assert report.ok, "\n".join(f.message for f in report.failures)
    assert report.iterations_run == 500
    assert report.checks["signature"] > 500


def test_overpruning_path_index_is_caught(monkeypatch):
    # A path index that drops one genuine candidate makes the indexed
    # search miss mappings the exhaustive scan still finds; the index
    # oracle reports the list divergence.
    orig = index_mod.PathIndex.candidates

    def overpruned(self, source_path):
        out = orig(self, source_path)
        return out[:-1] if out else out

    monkeypatch.setattr(index_mod.PathIndex, "candidates", overpruned)
    report = run_fuzz(FuzzConfig(seed=0, iterations=16,
                                 oracles=("index",), shrink=False))
    assert not report.ok
    invariants = {f.invariant for f in report.failures}
    assert invariants & {"indexed-mappings-differ",
                         "indexed-body-mappings-differ"}


def test_index_oracle_parity_campaign():
    # Acceptance criterion: indexed and unindexed mapping search agree
    # on the full mapping list over >= 500 seeded iterations across all
    # generator profiles.
    report = run_fuzz(FuzzConfig(seed=7, iterations=500,
                                 oracles=("index",)))
    assert report.ok, "\n".join(f.message for f in report.failures)
    assert report.iterations_run == 500
    assert report.checks["index"] > 500


def test_lossy_wal_is_caught(monkeypatch):
    # A WAL that silently drops records diverges the reopened database
    # from the live one -- the persist oracle's store round trip.
    orig = durable_mod.DurableStore._append
    state = {"records": 0}

    def lossy(self, record):
        state["records"] += 1
        if state["records"] % 3 == 0:
            return  # drop every third record on the floor
        orig(self, record)

    monkeypatch.setattr(durable_mod.DurableStore, "_append", lossy)
    report = run_fuzz(FuzzConfig(seed=0, iterations=4,
                                 oracles=("persist",), shrink=False))
    assert not report.ok
    assert "store-roundtrip" in {f.invariant for f in report.failures}


def test_lossy_cache_load_is_caught(monkeypatch):
    # A cache store that forgets its entries must trip the round-trip
    # comparison (and the exact-hit check behind it).
    monkeypatch.setattr(
        cachestore_mod.CacheStore, "load",
        lambda self, cache, store_version: {"entries": 0, "dropped": 0})
    report = run_fuzz(FuzzConfig(seed=0, iterations=4,
                                 oracles=("persist",), shrink=False))
    assert not report.ok
    invariants = {f.invariant for f in report.failures}
    assert invariants & {"cache-roundtrip", "cache-hit-after-reload"}


def test_ignored_label_overlap_is_caught(monkeypatch):
    # An overlap test that never fires turns every invalidation into a
    # patch -- a stale entry stays live after an update that can change
    # its answer.  (QueryCache.apply_update imports may_overlap at call
    # time, so the module attribute is the right patch point.)
    monkeypatch.setattr(maintenance_mod, "may_overlap",
                        lambda labels, touched: False)
    report = run_fuzz(FuzzConfig(seed=0, iterations=4,
                                 oracles=("persist",), shrink=False))
    assert not report.ok
    assert {f.invariant for f in report.failures} \
        == {"maintenance-invalidates"}


def test_mutation_failures_replay_from_corpus(monkeypatch, tmp_path):
    from repro.oracle import replay

    monkeypatch.setattr(
        chase_mod, "_drop_subsumed_empty_paths",
        lambda paths: paths[:-1] if len(paths) > 1 else paths)
    report = run_fuzz(FuzzConfig(seed=0, iterations=8,
                                 corpus_dir=str(tmp_path)))
    _assert_caught(report)
    saved = report.failures[0].corpus_path
    assert saved is not None
    # Still failing while the mutation is active ...
    assert not replay(saved).ok
    # ... and green once the engine is restored.
    monkeypatch.undo()
    assert replay(saved).ok
