"""Property tests: the chase with constraints preserves semantics.

On DTD-conforming data, chasing a query with the DTD's label inference
and functional dependencies must not change its answers -- constraints
only license transformations that hold on every conforming database.
"""

from hypothesis import given, settings, strategies as st

from repro.oem import identical
from repro.oracle import sample_db_and_query
from repro.rewriting import chase, dtd_from_dataguide
from repro.tsl import evaluate, parse_query
from repro.workloads import RandomOemConfig, generate_people, people_dtd

_SETTINGS = dict(max_examples=20, deadline=None)

QUERIES = [
    "<f(P) x 1> :- <P p {<X Y {<Z last stanford>}>}>@db",
    "<f(P) x L> :- <P p {<X L {<Z first leland>}>}>@db",
    "<f(P) x V> :- <P p {<N name {<A last V>}>}>@db AND "
    "<P p {<M name {<B first W>}>}>@db",
    "<f(P) copy V> :- <P p {<U phone W>}>@db AND <P p V>@db",
]


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000),
       index=st.integers(min_value=0, max_value=len(QUERIES) - 1))
def test_dtd_chase_preserves_answers_on_conforming_data(seed, index):
    db = generate_people(12, seed=seed)
    dtd = people_dtd()
    query = parse_query(QUERIES[index])
    chased = chase(query, dtd)
    assert identical(evaluate(query, db), evaluate(chased, db))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_instance_mined_constraints_preserve_answers(seed):
    db, query = sample_db_and_query(
        seed, oem=RandomOemConfig(roots=3, max_depth=3, max_fanout=2))
    mined = dtd_from_dataguide(db)
    chased = chase(query, mined)
    # Instance-derived constraints hold for this very instance, so the
    # chase must preserve the answers here.
    assert identical(evaluate(query, db), evaluate(chased, db))
