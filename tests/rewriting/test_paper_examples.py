"""E2: the worked examples of Section 3 run end to end.

Every example is checked two ways: the rewriter's *decision* matches the
paper, and every produced rewriting evaluates *identically* to the
original query when the view is materialized.
"""

import pytest

from repro.oem import identical
from repro.tsl import evaluate, parse_query, print_query
from repro.rewriting import is_rewriting, rewrite, rewrite_single_path


def _verify_semantics(query, rewriting, view, db):
    """A rewriting must produce the same answer via the materialized view."""
    view_data = evaluate(view, db, answer_name=view.name)
    direct = evaluate(query, db)
    via = evaluate(rewriting.query, {"db": db, view.name: view_data})
    assert identical(direct, via)


class TestExample31:
    """(Q3) has the rewriting (Q4) over (V1)."""

    def test_rewriting_found(self, v1, q3):
        result = rewrite(q3, {"V1": v1})
        assert len(result.rewritings) == 1

    def test_rewriting_is_q4(self, v1, q3):
        [rewriting] = rewrite(q3, {"V1": v1}).rewritings
        rendered = print_query(rewriting.query)
        assert "@V1" in rendered
        assert "leland" in rendered
        assert rewriting.query.head == q3.head  # Lemma 5.4
        assert rewriting.views_used == {"V1"}

    def test_rewriting_semantics(self, v1, q3, small_people):
        [rewriting] = rewrite(q3, {"V1": v1}).rewritings
        _verify_semantics(q3, rewriting, v1, small_people)

    def test_hand_written_q4_accepted(self, v1, q3):
        q4 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr Y> <h(X) v leland>}>@V1")
        assert is_rewriting(q4, q3, {"V1": v1})

    def test_single_path_entry_point(self, v1, q3):
        rewriting = rewrite_single_path(q3, v1)
        assert rewriting is not None


class TestExample32:
    """(Q5) has the set-mapping rewriting (Q6)."""

    def test_rewriting_found(self, v1, q5):
        result = rewrite(q5, {"V1": v1})
        assert len(result.rewritings) == 1

    def test_rewriting_contains_set_pattern(self, v1, q5):
        [rewriting] = rewrite(q5, {"V1": v1}).rewritings
        assert "{<Z last stanford>}" in print_query(rewriting.query)

    def test_rewriting_semantics(self, v1, q5, small_people):
        [rewriting] = rewrite(q5, {"V1": v1}).rewritings
        _verify_semantics(q5, rewriting, v1, small_people)

    def test_hand_written_q6_accepted(self, v1, q5):
        q6 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr Y> "
            "<h(X) v {<Z last stanford>}>}>@V1")
        assert is_rewriting(q6, q5, {"V1": v1})


class TestExample33:
    """(Q7) has NO rewriting over (V1): mappings are not sufficient."""

    def test_no_rewriting(self, v1, q7):
        result = rewrite(q7, {"V1": v1})
        assert len(result.rewritings) == 0

    def test_mapping_exists_but_candidate_rejected(self, v1, q7):
        # The mapping (M6) produces the candidate (Q8), whose composition
        # (Q9) is not equivalent to (Q7).
        result = rewrite(q7, {"V1": v1})
        assert result.stats.mappings >= 1
        assert result.stats.candidates_tested >= 1

    def test_hand_written_q8_rejected(self, v1, q7):
        q8 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr name> "
            "<h(X) v {<Z last stanford>}>}>@V1")
        assert not is_rewriting(q8, q7, {"V1": v1})

    def test_q7_and_q5_differ_semantically(self, q5, q7, small_people):
        # p2's stanford surname hides under "nick": Q5 sees it, Q7 not.
        ans5 = evaluate(q5, small_people)
        ans7 = evaluate(q7, small_people)
        assert len(ans5.roots) == 2
        assert len(ans7.roots) == 1


class TestExample35:
    """With the Section 3.3 DTD, (Q7) becomes rewritable."""

    def test_rewriting_found_with_dtd(self, v1, q7, dtd):
        result = rewrite(q7, {"V1": v1}, constraints=dtd)
        assert len(result.rewritings) == 1

    def test_q8_accepted_with_dtd(self, v1, q7, dtd):
        q8 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr name> "
            "<h(X) v {<Z last stanford>}>}>@V1")
        assert is_rewriting(q8, q7, {"V1": v1}, constraints=dtd)

    def test_semantics_on_dtd_conforming_data(self, v1, q7, dtd,
                                              people_db):
        [rewriting] = rewrite(q7, {"V1": v1}, constraints=dtd).rewritings
        view_data = evaluate(v1, people_db, answer_name="V1")
        direct = evaluate(q7, people_db)
        via = evaluate(rewriting.query,
                       {"db": people_db, "V1": view_data})
        assert identical(direct, via)

    def test_dtd_gain_is_real(self, v1, q7, dtd):
        """E4/ablation: without label inference + FDs there is nothing."""
        without = rewrite(q7, {"V1": v1})
        with_dtd = rewrite(q7, {"V1": v1}, constraints=dtd)
        assert len(without.rewritings) == 0
        assert len(with_dtd.rewritings) == 1
