"""Regression: composition through stacked views must not lose rules.

Found by the fuzzer's composition-associativity invariant: each
unfolding level (and each separate ``compose`` call) used to restart the
view-copy rename counter, so a level-2 view copy could be renamed with
the same ``~N`` suffix as variables introduced at level 1.  The
resulting self-collision failed the occurs check and silently produced
zero rules.  The counter now resumes above any ``~N`` already present in
the candidate or the views.
"""

from repro.oem import build_database, identical, obj
from repro.rewriting import compose
from repro.tsl import evaluate, evaluate_program, parse_query


def _stack():
    # Both views deliberately use the same variable name X: after one
    # unfolding level renames the S2 copy to X~1, a restarted counter
    # would rename the S1 copy to X~1 as well and collide.
    s1 = parse_query("<v_s1(X) row 7> :- <X a 7>@db", name="S1")
    s2 = parse_query("<v_s2(X) out 7> :- <X row 7>@S1", name="S2")
    probe = parse_query("<p(Z) x ok> :- <Z out 7>@S2", name="P")
    return s1, s2, probe


def test_one_shot_composition_reaches_the_base_source():
    s1, s2, probe = _stack()
    rules = compose(probe, {"S1": s1, "S2": s2})
    assert rules, "stacked composition produced no rules"
    assert all(rule.sources() == {"db"} for rule in rules)


def test_stepwise_composition_agrees_with_one_shot():
    s1, s2, probe = _stack()
    one_shot = compose(probe, {"S1": s1, "S2": s2})
    partial = compose(probe, {"S2": s2})
    assert partial and all(rule.sources() == {"S1"} for rule in partial)
    stepwise = [rule for p in partial for rule in compose(p, {"S1": s1})]
    assert stepwise

    db = build_database("db", [obj("a", "7", oid="p1"),
                               obj("a", "8", oid="p2")])
    assert identical(evaluate_program(one_shot, db),
                     evaluate_program(stepwise, db))


def test_composition_semantics_through_the_stack():
    s1, s2, probe = _stack()
    db = build_database("db", [obj("a", "7", oid="p1"),
                               obj("b", "7", oid="p2")])
    m1 = evaluate(s1, db, answer_name="S1")
    m2 = evaluate(s2, {"S1": m1}, answer_name="S2")
    direct = evaluate(probe, {"S2": m2})
    via = evaluate_program(compose(probe, {"S1": s1, "S2": s2}), db)
    assert identical(direct, via)
