"""E12: soundness and completeness of the rewriting algorithm (Section 5).

* **Soundness** (Theorem 5.5, first half): every rewriting the algorithm
  emits evaluates identically to the original query -- checked by
  materializing the views over many concrete databases.
* **Completeness** (Theorem 5.5, second half): on workload families with
  rewritings known to exist by construction, the algorithm finds them.
* **Lemma 5.1**: no mapping from a view body => the view is irrelevant.
* **Lemma 5.3**: rewritings use no variables outside the query's.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oem import identical
from repro.rewriting import find_mappings, rewrite
from repro.tsl import evaluate, parse_query
from repro.workloads import (chain_database, chain_query, chain_view,
                             condition_view, generate_people,
                             k_conditions_database, k_conditions_query,
                             query_q3, query_q5, star_database, star_query,
                             star_view, view_v1)


def _assert_sound(query, views, db, result):
    """Every emitted rewriting evaluates identically to the query."""
    direct = evaluate(query, db)
    materialized = {name: evaluate(view, db, answer_name=name)
                    for name, view in views.items()}
    for rewriting in result.rewritings:
        via = evaluate(rewriting.query, {db.name: db, **materialized})
        assert identical(direct, via), str(rewriting.query)


class TestSoundness:
    @pytest.mark.parametrize("seed", range(3))
    def test_paper_views_on_random_people(self, seed):
        db = generate_people(20, seed=seed)
        views = {"V1": view_v1()}
        for query in (query_q3("stanford"), query_q3("leland"),
                      query_q5()):
            result = rewrite(query, views)
            assert result.rewritings
            _assert_sound(query, views, db, result)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_chain_views(self, depth):
        db = chain_database(depth, width=5)
        query = chain_query(depth)
        views = {"V": chain_view(depth)}
        result = rewrite(query, views)
        assert result.rewritings
        _assert_sound(query, views, db, result)

    @pytest.mark.parametrize("branches", [1, 2])
    def test_star_views(self, branches):
        db = star_database(branches, width=4)
        query = star_query(branches)
        views = {"V": star_view(branches)}
        result = rewrite(query, views)
        _assert_sound(query, views, db, result)

    def test_k_condition_views(self):
        k = 3
        db = k_conditions_database(k, width=3)
        query = k_conditions_query(k)
        views = {f"V{i}": condition_view(i) for i in range(1, k + 1)}
        result = rewrite(query, views, total_only=True)
        assert result.rewritings
        _assert_sound(query, views, db, result)


class TestCompleteness:
    def test_identity_like_view_always_rewrites(self):
        # The view exposes exactly the query's condition: a rewriting
        # exists by construction and must be found.
        for k in (1, 2, 3):
            query = k_conditions_query(k)
            views = {f"V{i}": condition_view(i) for i in range(1, k + 1)}
            result = rewrite(query, views, total_only=True)
            assert result.rewritings, f"no total rewriting found for k={k}"

    def test_rewriting_found_despite_extra_views(self):
        query = k_conditions_query(2)
        views = {f"V{i}": condition_view(i) for i in range(1, 6)}
        result = rewrite(query, views, total_only=True)
        assert result.rewritings

    def test_exhaustive_equals_heuristic(self):
        query = k_conditions_query(3)
        views = {f"V{i}": condition_view(i) for i in range(1, 4)}
        fast = {str(r.query) for r in rewrite(query, views).rewritings}
        slow = {str(r.query)
                for r in rewrite(query, views, heuristic=False).rewritings}
        assert fast == slow


class TestLemma51:
    """A view without a mapping into the query is irrelevant."""

    def test_no_mapping_no_rewriting(self):
        query = parse_query("<f(P) x V> :- <P a V>@db")
        view = parse_query("<v(P) row V> :- <P zzz V>@db", name="V")
        assert find_mappings(view, query) == []
        assert rewrite(query, {"V": view}).rewritings == []


class TestLemma53:
    """Rewritings introduce no variables beyond the query's."""

    def test_variables_bounded(self, v1, q3):
        query_vars = {v.name for v in q3.all_variables()}
        for rewriting in rewrite(q3, {"V1": v1}):
            used = {v.name for v in rewriting.query.all_variables()}
            assert used <= query_vars


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_sound_on_random_people(seed):
    db = generate_people(10, seed=seed)
    views = {"V1": view_v1()}
    query = query_q5()
    result = rewrite(query, views)
    direct = evaluate(query, db)
    materialized = {"V1": evaluate(views["V1"], db, answer_name="V1")}
    for rewriting in result.rewritings:
        via = evaluate(rewriting.query, {"db": db, **materialized})
        assert identical(direct, via)


class TestCompletenessOnRandomQueries:
    """An exposing view always admits a rewriting of its own query."""

    @pytest.mark.parametrize("seed", range(8))
    def test_exposing_view_always_rewrites(self, seed):
        from repro.workloads import (exposing_view,
                                     generate_random_database,
                                     sample_query)
        db = generate_random_database(seed=seed)
        query = sample_query(db, seed=seed + 100)
        view = exposing_view(query, name="V")
        result = rewrite(query, {"V": view}, first_only=True)
        assert result.rewritings, f"seed {seed}: no rewriting found"
        _assert_sound(query, {"V": view}, db, result)
