"""Concurrency regressions: one shared session, many threads.

The serving pool (``repro.server``) drives one :class:`RewriteSession`
from several worker threads at once.  These tests hammer the memo
machinery directly -- no HTTP -- and pin the invariants the locking
added for the service must preserve:

* no lost or duplicated entries (the table never exceeds capacity, and
  every key maps to the value its key determines);
* stats that sum correctly (hits + misses == probes, both on the table
  counters and on the exported ``cache.*`` metrics);
* shared prepared state: every thread sees the *same* prepared-view
  and signature-index objects;
* parity: concurrent ``rewrite()`` results are fingerprint-identical
  to a serial fresh-session run.
"""

import threading

from repro.obs import MetricsRegistry
from repro.oem import identical
from repro.repository import QueryCache
from repro.rewriting import RewriteSession, paper_dtd
from repro.rewriting.canon import program_key
from repro.rewriting.session import MemoTable, _MISS
from repro.tsl import evaluate
from repro.workloads import (conference_query, query_q3, query_q5,
                             query_q7, view_v1)

THREADS = 8
ROUNDS = 200


def hammer(worker, threads=THREADS):
    """Run *worker(index)* on N threads, releasing them together."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestMemoTableUnderContention:
    def test_no_lost_or_duplicated_entries_and_stats_sum(self):
        registry = MetricsRegistry()
        capacity = 8
        keyspace = 32  # > capacity, so eviction churns constantly
        table = MemoTable("hammer", capacity, registry)
        probes_per_thread = ROUNDS

        def worker(index):
            # Recompute deterministically on a miss, as the session
            # does: the value is a pure function of the key, so racing
            # puts are idempotent.
            for i in range(probes_per_thread):
                key = (index + i) % keyspace
                value = table.get(key)
                if value is _MISS:
                    table.put(key, key * 2)
                else:
                    assert value == key * 2, \
                        f"key {key} served foreign value {value}"

        hammer(worker)

        stats = table.stats()
        total_probes = THREADS * probes_per_thread
        assert stats["hits"] + stats["misses"] == total_probes
        assert stats["size"] == len(table) <= capacity
        # Every surviving entry still maps to its own value.
        for key in range(keyspace):
            value = table.peek(key)
            if value is not _MISS:
                assert value == key * 2
        # The exported counters agree with the table's own counters.
        counters = registry.snapshot()["counters"]
        assert counters["cache.hammer.hits"] == stats["hits"]
        assert counters["cache.hammer.misses"] == stats["misses"]
        assert counters["cache.hammer.evictions"] == stats["evictions"]

    def test_eviction_accounting_balances(self):
        table = MemoTable("balance", 4)
        inserted = 128

        def worker(index):
            for i in range(inserted):
                table.put((index, i), i)

        hammer(worker)
        stats = table.stats()
        # Inserts are all distinct keys: whatever is not resident was
        # evicted exactly once.
        assert stats["size"] + stats["evictions"] == THREADS * inserted
        assert stats["size"] <= 4


class TestSharedSessionUnderContention:
    def test_concurrent_rewrites_match_serial_and_stats_sum(self):
        queries = [query_q3(), query_q5(), query_q7()]
        serial = RewriteSession({"V1": view_v1()}, paper_dtd())
        expected = [program_key([r.query for r in
                                 serial.rewrite(q).rewritings])
                    for q in queries]

        session = RewriteSession({"V1": view_v1()}, paper_dtd())
        rounds = 6
        mismatches = []
        lock = threading.Lock()

        def worker(index):
            for i in range(rounds * len(queries)):
                slot = (index + i) % len(queries)
                result = session.rewrite(queries[slot])
                got = program_key([r.query for r in result.rewritings])
                if got != expected[slot]:
                    with lock:
                        mismatches.append((slot, got))

        hammer(worker)
        assert not mismatches

        stats = session.stats()["rewrite"]
        calls = THREADS * rounds * len(queries)
        # Every rewrite() probes the result memo exactly once.
        assert stats["hits"] + stats["misses"] == calls
        # All threads converged on one entry per distinct query -- no
        # duplicated entries under the canonical keying.
        assert stats["size"] == len(queries)
        assert stats["evictions"] == 0

    def test_prepared_views_and_signature_index_are_shared(self):
        session = RewriteSession({"V1": view_v1()}, paper_dtd())
        seen_views = []
        seen_indexes = []
        lock = threading.Lock()

        def worker(index):
            prepared = session.prepared_view("V1")
            signature = session.signature_index()
            with lock:
                seen_views.append(id(prepared))
                seen_indexes.append(id(signature))

        hammer(worker)
        assert len(set(seen_views)) == 1, \
            "threads saw different prepared-view objects"
        assert len(set(seen_indexes)) == 1, \
            "threads saw different signature indexes"


class TestQueryCacheUnderContention:
    def test_concurrent_lookups_count_and_serve_consistently(self, biblio_db):
        conferences = ["sigmod", "vldb", "icde", "pods"]
        cache = QueryCache(capacity=16)
        for conference in conferences:
            statement = conference_query(conference)
            cache.insert(statement, evaluate(statement, biblio_db), 0)
        baseline = {c: evaluate(conference_query(c), biblio_db)
                    for c in conferences}
        rounds = 12
        failures = []
        lock = threading.Lock()

        def worker(index):
            for i in range(rounds):
                conference = conferences[(index + i) % len(conferences)]
                answer = cache.lookup(conference_query(conference), 0)
                if answer is None \
                        or not identical(answer, baseline[conference]):
                    with lock:
                        failures.append(conference)

        hammer(worker)
        assert not failures
        assert cache.stats.lookups == THREADS * rounds
        assert cache.stats.hits == THREADS * rounds
        assert len(cache) == len(conferences)
