"""Regression: duplicate candidate atoms are merged, not re-tested.

Distinct containment mappings can instantiate a view to the *same*
condition (e.g. a view with a ground head matched at several target
paths).  Before the fix, each mapping produced its own
:class:`~repro.rewriting.rewriter.CandidateAtom`, so ``_search`` built
and equivalence-tested identical candidate bodies once per copy --
pure duplicated work.  Now equal-condition atoms are merged (their
``covers`` unioned) and counted in ``stats.candidates_pruned_duplicate``.
"""

import pytest

from repro.rewriting import rewrite, view_instantiations
from repro.tsl import parse_query


@pytest.fixture
def ground_head_view():
    # Every mapping of the body instantiates the same (ground) head.
    return parse_query("<c result done> :- <X item Y>@db", name="V")


@pytest.fixture
def two_site_query():
    # Two body paths the view maps onto independently (different oids,
    # so the chase cannot unify them away).
    return parse_query(
        "<f(P1,P2) res {<g1(P1) got V1> <g2(P2) got V2>}> :- "
        "<P1 item V1>@db AND <P2 item V2>@db")


def test_instantiations_still_report_each_mapping(ground_head_view,
                                                  two_site_query):
    atoms = view_instantiations(two_site_query, {"V": ground_head_view})
    conditions = [a.condition for a in atoms]
    assert len(conditions) == 2
    assert conditions[0] == conditions[1]
    assert {frozenset(a.covers) for a in atoms} \
        == {frozenset({0}), frozenset({1})}


def test_search_merges_duplicates_and_unions_covers(ground_head_view,
                                                    two_site_query):
    result = rewrite(two_site_query, {"V": ground_head_view})
    assert result.stats.candidates_pruned_duplicate == 1


def test_distinct_conditions_not_merged():
    view = parse_query("<v(X) got Y> :- <X item Y>@db", name="V")
    query = parse_query(
        "<f(P1,P2) res {<g1(P1) a V1> <g2(P2) b V2>}> :- "
        "<P1 item V1>@db AND <P2 item V2>@db")
    result = rewrite(query, {"V": view})
    assert result.stats.candidates_pruned_duplicate == 0


def test_stat_serializes():
    view = parse_query("<c result done> :- <X item Y>@db", name="V")
    query = parse_query(
        "<f(P1,P2) res {<g1(P1) got V1> <g2(P2) got V2>}> :- "
        "<P1 item V1>@db AND <P2 item V2>@db")
    stats = rewrite(query, {"V": view}).stats
    assert stats.to_json()["candidates_pruned_duplicate"] == 1
