"""Tests for DTD structural constraints (Section 3.3)."""

import pytest

from repro.errors import ConstraintError
from repro.rewriting import Dtd, chase, equivalent, parse_dtd, paper_dtd
from repro.rewriting.constraints import ChildSpec
from repro.tsl import parse_query, print_query, query_paths


class TestDtdParsing:
    def test_paper_dtd_elements(self, dtd):
        assert set(dtd.elements) == {"p", "name", "alias", "address",
                                     "phone", "last", "first", "middle"}

    def test_atomic_elements(self, dtd):
        for name in ("address", "phone", "last", "first", "middle"):
            assert dtd.is_atomic(name)
        assert not dtd.is_atomic("p")

    def test_multiplicities(self, dtd):
        specs = {spec.name: spec.multiplicity
                 for spec in dtd.children_of("p")}
        assert specs == {"name": "1", "phone": "1", "address": "*"}
        name_specs = {s.name: s.multiplicity
                      for s in dtd.children_of("name")}
        assert name_specs == {"last": "1", "first": "1",
                              "middle": "?", "alias": "?"}

    def test_pcdata_is_atomic(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        assert dtd.is_atomic("t")

    def test_choice_groups(self):
        dtd = parse_dtd("<!ELEMENT t (a | b)>")
        specs = {s.name: s.multiplicity for s in dtd.children_of("t")}
        assert specs == {"a": "?", "b": "?"}

    def test_plus_multiplicity(self):
        dtd = parse_dtd("<!ELEMENT t (a+)>")
        assert dtd.children_of("t")[0].multiplicity == "+"
        assert not dtd.functional_child("t", "a")

    def test_garbage_rejected(self):
        with pytest.raises(ConstraintError):
            parse_dtd("this is not a dtd")

    def test_unsupported_particle_rejected(self):
        with pytest.raises(ConstraintError):
            parse_dtd("<!ELEMENT t ((a,b)*)>")

    def test_known_labels(self, dtd):
        assert "alias" in dtd.known_labels()


class TestInference:
    def test_label_inference_example_35(self, dtd):
        # "the only subobject of a p object with a last subobject is a
        # name object"
        assert dtd.infer_middle_label("p", "last") == "name"

    def test_no_inference_when_ambiguous(self):
        dtd = parse_dtd("""
            <!ELEMENT r (a, b)>
            <!ELEMENT a (x)>
            <!ELEMENT b (x)>
            <!ELEMENT x CDATA>
        """)
        assert dtd.infer_middle_label("r", "x") is None

    def test_only_child_label(self):
        dtd = parse_dtd("<!ELEMENT r (a*)> <!ELEMENT a CDATA>")
        assert dtd.only_child_label("r") == "a"
        assert paper_dtd().only_child_label("p") is None

    def test_functional_dependency_example_35(self, dtd):
        # "a p object has exactly one name subobject"
        assert dtd.functional_child("p", "name")
        assert dtd.functional_child("name", "middle")   # '?' counts
        assert not dtd.functional_child("p", "address")  # '*' does not
        assert not dtd.functional_child("p", "last")     # not a child


class TestChaseWithConstraints:
    def test_label_inference_binds_variable(self, dtd):
        q = parse_query(
            "<f(P) x 1> :- <P p {<X Y {<Z last stanford>}>}>@db")
        chased = chase(q, dtd)
        assert "name" in print_query(chased)
        assert "Y" not in {v.name for v in chased.all_variables()}

    def test_example_35_q9_becomes_q13(self, dtd):
        """(Q9) --label inference + FD chase--> (Q13) ~ (Q7)."""
        q9 = parse_query(
            "<f(P) stanford yes> :- "
            "<P p {<X' name Z'>}>@db AND "
            "<P p {<X'' Y'' {<Z last stanford>}>}>@db")
        q7 = parse_query(
            "<f(P) stanford yes> :- "
            "<P p {<X name {<Z last stanford>}>}>@db")
        # Without the DTD the two queries differ...
        assert not equivalent(q9, q7)
        # ... with it, label inference forces Y''=name and the FD forces
        # X''=X', collapsing (Q9) into (Q13) which is equivalent to (Q7).
        assert equivalent(q9, q7, constraints=dtd)

    def test_fd_chase_merges_children(self, dtd):
        q = parse_query(
            "<f(P) x 1> :- <P p {<X name {<A last u>}>}>@db AND "
            "<P p {<Y name {<B first v>}>}>@db")
        chased = chase(q, dtd)
        # X and Y denote the same (unique) name child.
        oids = {str(path.steps[1][0]) for path in query_paths(chased)}
        assert len(oids) == 1

    def test_constraints_scoped_to_source(self):
        dtd = paper_dtd(source="other")
        q = parse_query(
            "<f(P) x 1> :- <P p {<X Y {<Z last stanford>}>}>@db")
        chased = chase(q, dtd)  # wrong source: no inference
        assert "Y" in {v.name for v in chased.all_variables()}


class TestProgrammaticDtd:
    def test_declare_api(self):
        dtd = Dtd()
        dtd.declare("r", [ChildSpec("a", "1")]).declare_atomic("a")
        assert dtd.functional_child("r", "a")
        assert dtd.only_child_label("r") == "a"


class TestXmlDataSchema:
    """Section 3.3 also names "the newly proposed XML-Data"."""

    SCHEMA = """
        <elementType id="p">
            <element type="#name" occurs="REQUIRED"/>
            <element type="#phone" occurs="REQUIRED"/>
            <element type="#address" occurs="ZEROORMORE"/>
        </elementType>
        <elementType id="name">
            <element type="#last" occurs="REQUIRED"/>
            <element type="#first" occurs="REQUIRED"/>
            <element type="#middle" occurs="OPTIONAL"/>
        </elementType>
        <elementType id="phone"><string/></elementType>
        <elementType id="last"><string/></elementType>
        <elementType id="first"><string/></elementType>
        <elementType id="middle"><string/></elementType>
        <elementType id="address"><string/></elementType>
    """

    def test_parses_to_dtd(self):
        from repro.rewriting import parse_xml_data
        schema = parse_xml_data(self.SCHEMA)
        assert schema.functional_child("p", "name")
        assert not schema.functional_child("p", "address")
        assert schema.is_atomic("phone")
        assert schema.infer_middle_label("p", "last") == "name"

    def test_default_occurs_is_required(self):
        from repro.rewriting import parse_xml_data
        schema = parse_xml_data(
            '<elementType id="r"><element type="#a"/></elementType>'
            '<elementType id="a"><string/></elementType>')
        assert schema.functional_child("r", "a")

    def test_garbage_rejected(self):
        from repro.rewriting import parse_xml_data
        with pytest.raises(ConstraintError):
            parse_xml_data("not a schema")

    def test_unlocks_q7_like_the_dtd(self, v1, q7):
        from repro.rewriting import parse_xml_data, rewrite
        schema = parse_xml_data(self.SCHEMA)
        result = rewrite(q7, {"V1": v1}, constraints=schema)
        assert len(result.rewritings) == 1
