"""Tests for maximally contained rewritings (Section 7 future work)."""

import pytest

from repro.oem import build_database, obj
from repro.rewriting import (contained_in, maximally_contained_rewritings,
                             programs_contained, rewrite)
from repro.tsl import evaluate, parse_query


@pytest.fixture
def sigmod_view():
    """A view keeping only SIGMOD publications (partial coverage)."""
    return parse_query(
        "<v(P) pub {<c(P,L,W) L W>}> :- "
        "<P pub {<B booktitle sigmod>}>@db AND <P pub {<X L W>}>@db",
        name="V")


@pytest.fixture
def all_titles_query():
    """Titles of ALL publications -- more than the view retains."""
    return parse_query("<f(P) title T> :- <P pub {<X title T>}>@db")


class TestContainment:
    def test_reflexive(self, all_titles_query):
        assert contained_in(all_titles_query, all_titles_query)

    def test_narrower_contained_in_broader(self):
        broad = parse_query("<f(P) title T> :- <P pub {<X title T>}>@db")
        narrow = parse_query(
            "<f(P) title T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<B booktitle sigmod>}>@db")
        assert contained_in(narrow, broad)
        assert not contained_in(broad, narrow)

    def test_programs_contained_unions(self):
        broad = [parse_query("<f(P) x V> :- <P a {<X b V>}>@db")]
        union = [
            parse_query("<f(P) x V> :- "
                        "<P a {<X b V>}>@db AND <P a {<Y c 1>}>@db"),
            parse_query("<f(P) x V> :- "
                        "<P a {<X b V>}>@db AND <P a {<Z d 2>}>@db"),
        ]
        assert programs_contained(union, broad)
        assert not programs_contained(broad, union)


class TestMaximallyContained:
    def test_no_equivalent_but_a_contained_one(self, sigmod_view,
                                               all_titles_query):
        # Equivalent rewriting impossible: the view only has SIGMOD pubs.
        assert not rewrite(all_titles_query, {"V": sigmod_view},
                           total_only=True).rewritings
        result = maximally_contained_rewritings(
            all_titles_query, {"V": sigmod_view})
        assert len(result.rewritings) >= 1
        assert all(not r.is_equivalent for r in result.rewritings)

    def test_contained_answer_is_sound_and_maximal(self, sigmod_view,
                                                   all_titles_query):
        db = build_database("db", [
            obj("pub", [obj("title", "a"), obj("booktitle", "sigmod")]),
            obj("pub", [obj("title", "b"), obj("booktitle", "vldb")]),
        ])
        result = maximally_contained_rewritings(
            all_titles_query, {"V": sigmod_view})
        view_data = evaluate(sigmod_view, db, answer_name="V")
        full = {r.value for r in
                evaluate(all_titles_query, db).root_objects()}
        best = result.rewritings[0]
        partial = {r.value for r in
                   evaluate(best.query, {"V": view_data}).root_objects()}
        # Sound: only true answers; maximal here: all SIGMOD titles.
        assert partial <= full
        assert partial == {"a"}

    def test_equivalent_rewriting_dominates(self, sigmod_view):
        # A query the view fully answers: the maximal rewriting is the
        # equivalent one, flagged as such.
        query = parse_query(
            "<f(P) title T> :- <P pub {<X title T>}>@db AND "
            "<P pub {<B booktitle sigmod>}>@db")
        result = maximally_contained_rewritings(query, {"V": sigmod_view})
        assert any(r.is_equivalent for r in result.rewritings)

    def test_dominated_candidates_dropped(self, sigmod_view):
        # With two views (sigmod pubs and sigmod-1997 pubs), the 1997
        # view's rewriting is strictly contained in the sigmod view's
        # and must not be reported.
        narrow_view = parse_query(
            "<w(P) pub {<d(P,L,W) L W>}> :- "
            "<P pub {<B booktitle sigmod>}>@db AND "
            "<P pub {<Y year 1997>}>@db AND <P pub {<X L W>}>@db",
            name="W")
        query = parse_query("<f(P) title T> :- <P pub {<X title T>}>@db")
        result = maximally_contained_rewritings(
            query, {"V": sigmod_view, "W": narrow_view})
        used = {frozenset(r.views_used) for r in result.rewritings}
        assert frozenset(["V"]) in used
        assert frozenset(["W"]) not in used

    def test_irrelevant_view_gives_nothing(self, all_titles_query):
        view = parse_query("<v(P) z V> :- <P zzz V>@db", name="V")
        result = maximally_contained_rewritings(
            all_titles_query, {"V": view})
        assert len(result.rewritings) == 0
