"""Tests for containment mappings (Step 1A, Section 3.1)."""

from repro.logic.subst import Substitution
from repro.logic.terms import Constant, Variable
from repro.rewriting import body_mappings, find_mappings, map_path_into
from repro.rewriting.mappings import EMPTY_SET_TERM, coverage
from repro.tsl import SetPatternTerm, parse_query, query_paths
from repro.workloads import star_query, star_view, view_v1


def _paths(text):
    return query_paths(parse_query(text))


def _v(name):
    return Variable(name)


class TestPaperMappings:
    def test_m2_for_q3(self, v1, q3):
        """(M2): the only mapping from body(V1) to body(Q3)."""
        mappings = find_mappings(v1, q3)
        assert len(mappings) == 1
        subst = mappings[0].subst
        assert subst.apply(_v("P'")) == _v("P")
        assert subst.apply(_v("X'")) == _v("X")
        assert subst.apply(_v("Y'")) == _v("Y")
        assert subst.apply(_v("Z'")) == Constant("leland")

    def test_m5_for_q5_is_a_set_mapping(self, v1, q5):
        """(M5): Z' maps to the set pattern {<Z last stanford>}."""
        mappings = find_mappings(v1, q5)
        assert len(mappings) == 1
        image = mappings[0].subst.apply(_v("Z'"))
        assert isinstance(image, SetPatternTerm)
        assert str(image) == "{<Z last stanford>}"

    def test_m6_exists_for_q7(self, v1, q7):
        """(M6) exists even though no rewriting of (Q7) does (Ex. 3.3)."""
        mappings = find_mappings(v1, q7)
        assert len(mappings) == 1
        assert mappings[0].subst.apply(_v("Y'")) == Constant("name")

    def test_mapping_covers_target_condition(self, v1, q3):
        mapping = find_mappings(v1, q3)[0]
        assert mapping.covers == frozenset([0])


class TestPathMapping:
    def test_equal_length_pointwise(self):
        [a] = _paths("<f(X) r 1> :- <P p {<X name V>}>@db")
        [b] = _paths("<f(X) r 1> :- <Q p {<Y name leland>}>@db")
        subst = map_path_into(a, b, Substitution())
        assert subst is not None
        assert subst.apply(_v("V")) == Constant("leland")

    def test_source_mismatch(self):
        [a] = _paths("<f(X) r 1> :- <P p V>@db1")
        [b] = _paths("<f(X) r 1> :- <P p V>@db2")
        assert map_path_into(a, b, Substitution()) is None

    def test_longer_source_fails(self):
        [a] = _paths("<f(X) r 1> :- <P p {<X name V>}>@db")
        [b] = _paths("<f(X) r 1> :- <Q p W>@db")
        assert map_path_into(a, b, Substitution()) is None

    def test_prefix_with_set_mapping(self):
        [a] = _paths("<f(P) r V> :- <P p V>@db")
        [b] = _paths("<f(P) r 1> :- <Q p {<X name leland>}>@db")
        subst = map_path_into(a, b, Substitution())
        image = subst.apply(_v("V"))
        assert isinstance(image, SetPatternTerm)
        assert str(image) == "{<X name leland>}"

    def test_constant_leaf_cannot_absorb_suffix(self):
        [a] = _paths("<f(P) r 1> :- <P p leland>@db")
        [b] = _paths("<f(P) r 1> :- <Q p {<X name leland>}>@db")
        assert map_path_into(a, b, Substitution()) is None

    def test_label_constant_must_match(self):
        [a] = _paths("<f(P) r 1> :- <P q V>@db")
        [b] = _paths("<f(P) r 1> :- <Q p W>@db")
        assert map_path_into(a, b, Substitution()) is None

    def test_constant_cannot_map_to_variable(self):
        # Containment direction: a's constants must appear in b.
        [a] = _paths("<f(P) r 1> :- <P p leland>@db")
        [b] = _paths("<f(P) r 1> :- <Q p W>@db")
        assert map_path_into(a, b, Substitution()) is None

    def test_empty_set_leaf_into_longer_path(self):
        [a] = _paths("<f(P) r 1> :- <P p {}>@db")
        [b] = _paths("<f(P) r 1> :- <Q p {<X name V>}>@db")
        assert map_path_into(a, b, Substitution()) is not None

    def test_empty_set_leaf_into_term_leaf_fails(self):
        [a] = _paths("<f(P) r 1> :- <P p {}>@db")
        [b] = _paths("<f(P) r V> :- <Q p V>@db")
        assert map_path_into(a, b, Substitution()) is None

    def test_var_leaf_into_empty_set_leaf(self):
        [a] = _paths("<f(P) r V> :- <P p V>@db")
        [b] = _paths("<f(P) r 1> :- <Q p {}>@db")
        subst = map_path_into(a, b, Substitution())
        assert subst.apply(_v("V")) == EMPTY_SET_TERM

    def test_function_term_oids_decompose(self):
        [a] = _paths("<f(P) r V> :- <g(P) p V>@V1")
        [b] = _paths("<f(P) r V> :- <g(Q) p leland>@V1")
        subst = map_path_into(a, b, Substitution())
        assert subst.apply(_v("P")) == _v("Q")


class TestBodyMappings:
    def test_consistency_across_paths(self):
        source = _paths("<f(P) r 1> :- <P p {<X a V>}>@db AND "
                        "<P p {<Y b W>}>@db")
        target = _paths("<f(P) r 1> :- <Q p {<A a 1>}>@db AND "
                        "<R p {<B b 2>}>@db")
        # P must map to both Q and R: impossible.
        assert body_mappings(source, target) == []

    def test_consistent_join(self):
        source = _paths("<f(P) r 1> :- <P p {<X a V>}>@db AND "
                        "<P p {<Y b W>}>@db")
        target = _paths("<f(P) r 1> :- <Q p {<A a 1>}>@db AND "
                        "<Q p {<B b 2>}>@db")
        assert len(body_mappings(source, target)) == 1

    def test_limit_short_circuits(self):
        source = _paths("<f(R) r 1> :- <R root {<X b V>}>@db")
        target = query_paths(star_query(4))
        all_mappings = body_mappings(source, target)
        assert len(all_mappings) == 4
        assert len(body_mappings(source, target, limit=1)) == 1

    def test_self_similar_star_explodes(self):
        """E5: identical branches multiply the mapping count."""
        counts = []
        for branches in (2, 3, 4):
            view = star_view(branches)
            query = star_query(branches)
            counts.append(len(body_mappings(query_paths(view),
                                            query_paths(query))))
        assert counts == [4, 27, 256]  # b^b mappings

    def test_distinct_labels_stay_linear(self):
        for branches in (2, 3, 4):
            view = star_view(branches, distinct_labels=True)
            query = star_query(branches, distinct_labels=True)
            assert len(body_mappings(query_paths(view),
                                     query_paths(query))) == 1


class TestCoverage:
    def test_coverage_under_fixed_subst(self, v1, q5):
        mapping = find_mappings(v1, q5)[0]
        source = query_paths(v1)
        target = query_paths(q5)
        assert coverage(source, target, mapping.subst) == frozenset([0])
