"""Property-based check: composition commutes with evaluation.

For random databases and sampled queries, build a view and a candidate
that navigates the view's head structure; the composed rules evaluated
over the base data must produce exactly what the candidate produces over
the materialized view.  This is the semantic contract Step 2 relies on
-- if composition over- or under-approximated, the rewriter would accept
wrong rewritings or reject correct ones.
"""

from hypothesis import given, settings, strategies as st

from repro.oem import identical
from repro.rewriting import compose
from repro.tsl import evaluate, evaluate_program
from repro.tsl.ast import Condition, ObjectPattern, Query
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.workloads import (RandomOemConfig, RandomQueryConfig,
                             exposing_view, generate_random_database,
                             sample_query, view_v1, generate_people)

_SETTINGS = dict(max_examples=20, deadline=None)


def _candidate_over_view_head(view: Query) -> Query:
    """A candidate whose single condition is the view's own head shape."""
    head = ObjectPattern(
        FunctionTerm("probe", (view.head.oid,)),
        Constant("probe"), Constant("ok"))
    return Query(head, (Condition(view.head, view.name),))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_composition_commutes_on_exposing_views(seed):
    db = generate_random_database(
        RandomOemConfig(roots=3, max_depth=3, max_fanout=2), seed=seed)
    query = sample_query(db, RandomQueryConfig(conditions=2, max_depth=3),
                         seed=seed + 7)
    view = exposing_view(query, name="V")
    candidate = _candidate_over_view_head(view)
    composed = compose(candidate, {"V": view})
    materialized = evaluate(view, db, answer_name="V")
    direct = evaluate(candidate, {"db": db, "V": materialized})
    via = evaluate_program(composed, {"db": db})
    assert identical(direct, via)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_composition_commutes_on_v1(seed):
    db = generate_people(12, seed=seed)
    view = view_v1()
    candidate = _candidate_over_view_head(view)
    composed = compose(candidate, {"V1": view})
    materialized = evaluate(view, db, answer_name="V1")
    direct = evaluate(candidate, {"db": db, "V1": materialized})
    via = evaluate_program(composed, {"db": db})
    assert identical(direct, via)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000),
       prefix_depth=st.integers(min_value=1, max_value=2))
def test_composition_commutes_on_partial_navigation(seed, prefix_depth):
    """Candidates navigating only part of the view head still commute."""
    from repro.tsl.normalize import head_paths, path_pattern
    db = generate_people(10, seed=seed)
    view = view_v1()
    paths = list(head_paths(view))
    path = paths[seed % len(paths)]
    depth = min(prefix_depth, len(path.steps))
    if depth == len(path.steps):
        pattern = path_pattern(path.steps, path.leaf)
    else:
        from repro.tsl.ast import SetPattern
        pattern = path_pattern(path.steps[:depth], SetPattern(()))
    candidate = Query(
        ObjectPattern(FunctionTerm("probe", (view.head.oid,)),
                      Constant("probe"), Constant("ok")),
        (Condition(pattern, "V1"),))
    composed = compose(candidate, {"V1": view})
    materialized = evaluate(view, db, answer_name="V1")
    direct = evaluate(candidate, {"db": db, "V1": materialized})
    via = evaluate_program(composed, {"db": db})
    assert identical(direct, via)
