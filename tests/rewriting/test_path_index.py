"""The target-path index and the hot-path kernels built around it.

Covers the PR's tentpole invariant -- the indexed mapping search is
*observationally identical* to the exhaustive scan (same mapping lists,
same order) -- plus the satellite fixes: the most-constrained-first sort
key counts constants and bound variables, ``component_mapping`` returns
substitutions over fully un-renamed domains, the fast chase kernels
agree with their legacy counterparts, view plans are cached per session,
and the ``rewrite.index.*`` metrics / ``path_index`` flag plumbing.
"""

import pytest

from repro.logic.subst import Substitution
from repro.obs import MetricsRegistry
from repro.rewriting import (PathIndex, RewriteSession, ViewPlan,
                             most_constrained_order, paper_dtd,
                             programs_equivalent, rewrite,
                             statically_compatible)
from repro.rewriting.canon import program_key, query_key
from repro.rewriting.chase import chase
from repro.rewriting.equivalence import prepare_program
from repro.rewriting.mappings import (_unrename, body_mappings,
                                      component_mapping, coverage,
                                      find_mappings, map_path_into,
                                      rename_paths_apart)
from repro.rewriting.rewriter import RewriteStats
from repro.tsl import parse_query, query_paths
from repro.tsl.decompose import decompose_program
from repro.logic.terms import Variable
from repro.workloads import (condition_view, k_conditions_query, query_q3,
                             query_q7, star_query, star_view, view_v1)


def _paths(text):
    return query_paths(parse_query(text))


def fingerprint(result):
    return {(query_key(r.query), tuple(sorted(r.views_used)))
            for r in result.rewritings}


# --------------------------------------------------------------------------
# PathIndex: pruning is sound, candidates preserve scan order
# --------------------------------------------------------------------------

class TestPathIndex:
    def test_source_mismatch_is_statically_incompatible(self):
        [a] = _paths("<f(X) r 1> :- <P p V>@db1")
        [b] = _paths("<f(X) r 1> :- <P p V>@db2")
        assert not statically_compatible(a, b)

    def test_deeper_source_is_statically_incompatible(self):
        [a] = _paths("<f(X) r 1> :- <P p {<X name V>}>@db")
        [b] = _paths("<f(X) r 1> :- <Q p W>@db")
        assert not statically_compatible(a, b)

    def test_label_constant_clash_is_statically_incompatible(self):
        [a] = _paths("<f(X) r 1> :- <P alpha V>@db")
        [b] = _paths("<f(X) r 1> :- <Q beta W>@db")
        assert not statically_compatible(a, b)

    def test_variable_label_is_compatible_with_anything(self):
        [a] = _paths("<f(X) r 1> :- <P L V>@db")
        [b] = _paths("<f(X) r 1> :- <Q beta W>@db")
        assert statically_compatible(a, b)

    def test_candidates_are_ascending_and_sound(self):
        targets = _paths(
            "<f(X) r 1> :- <P alpha V>@db AND <Q beta W>@db AND "
            "<R alpha {<S gamma U>}>@db")
        index = PathIndex(targets)
        for text in ("<f(X) r 1> :- <A alpha B>@db",
                     "<f(X) r 1> :- <A L B>@db",
                     "<f(X) r 1> :- <A beta 7>@db"):
            [source] = _paths(text)
            candidates = index.candidates(source)
            assert candidates == sorted(candidates)
            # Soundness: every skipped target provably rejects the path.
            [renamed], start = rename_paths_apart([source], None)
            for position in set(range(len(targets))) - set(candidates):
                assert map_path_into(renamed, targets[position],
                                     start) is None


# --------------------------------------------------------------------------
# Satellite: most-constrained-first counts constants and bound variables
# --------------------------------------------------------------------------

class TestMostConstrainedOrder:
    def test_constant_rich_short_path_precedes_long_variable_path(self):
        # One step but two constants + a constant leaf beats two steps
        # of pure variables -- the old length-only key got this wrong.
        paths = _paths(
            "<f(X) r 1> :- <A L1 {<B L2 V>}>@db AND <P alpha leland>@db")
        long_variable, constant_rich = paths
        order = most_constrained_order(paths, frozenset())
        assert order == [1, 0]
        assert paths[order[0]] is constant_rich
        assert paths[order[1]] is long_variable

    def test_bound_variables_count_toward_the_score(self):
        paths = _paths("<f(X) r 1> :- <P L V>@db AND <Q M W>@db")
        assert most_constrained_order(paths, frozenset()) == [0, 1]
        bound = frozenset({Variable("Q"), Variable("M")})
        assert most_constrained_order(paths, bound) == [1, 0]

    def test_search_results_are_order_insensitive(self):
        # The ordering is a performance heuristic: the mapping *set*
        # matches the brute result regardless (parity is the oracle's
        # job; here we just pin the list against the unindexed scan).
        source = _paths(
            "<f(X) r 1> :- <A L1 {<B L2 V>}>@db AND <P alpha leland>@db")
        target = _paths(
            "<f(X) r 1> :- <P alpha leland>@db AND "
            "<C gamma {<D delta U>}>@db")
        assert body_mappings(source, target) == \
            body_mappings(source, target, use_index=False)


# --------------------------------------------------------------------------
# Satellite: component_mapping domains carry no rename markers
# --------------------------------------------------------------------------

class TestComponentMappingDomains:
    def test_unrename_strips_stacked_markers(self):
        doubled = Substitution({Variable("X††"): Variable("Y")})
        assert _unrename(doubled) == \
            Substitution({Variable("X"): Variable("Y")})

    def test_self_mapping_domain_is_marker_free(self):
        # component_mapping renames its paths apart *before* handing
        # them to body_mappings (which renames again); the result must
        # come back over the original variables, not half-stripped ones.
        for rule in (view_v1(), query_q3(), star_view(2)):
            prepared = prepare_program([rule], None)
            for component in decompose_program(prepared):
                subst = component_mapping(component, component)
                assert subst is not None
                for variable, image in subst.items():
                    assert "†" not in variable.name, subst
                    for v in image.variables():
                        assert "†" not in v.name, subst


# --------------------------------------------------------------------------
# Tentpole: indexed search == exhaustive scan, list-for-list
# --------------------------------------------------------------------------

class TestIndexedScanParity:
    WORKLOADS = [
        (view_v1, query_q3),
        (view_v1, query_q7),
        (lambda: star_view(3), lambda: star_query(3)),
        (lambda: star_view(3, distinct_labels=True),
         lambda: star_query(3, distinct_labels=True)),
        (lambda: condition_view(1), lambda: k_conditions_query(4)),
        (lambda: star_view(2), lambda: k_conditions_query(3)),
    ]

    @pytest.mark.parametrize("make_view,make_query", WORKLOADS)
    def test_find_mappings_lists_are_identical(self, make_view,
                                               make_query):
        view = chase(make_view(), None)
        query = chase(make_query(), None)
        assert find_mappings(view, query) == \
            find_mappings(view, query, use_index=False)

    @pytest.mark.parametrize("make_view,make_query", WORKLOADS)
    def test_body_mappings_lists_are_identical(self, make_view,
                                               make_query):
        source = query_paths(chase(make_view(), None))
        target = query_paths(chase(make_query(), None))
        assert body_mappings(source, target) == \
            body_mappings(source, target, use_index=False)

    def test_coverage_parity_under_every_found_mapping(self):
        view = chase(star_view(3), None)
        query = chase(star_query(3), None)
        source = query_paths(view)
        target = query_paths(query)
        mappings = body_mappings(source, target)
        assert mappings
        for subst in mappings:
            assert coverage(source, target, subst) == \
                coverage(source, target, subst, use_index=False)

    def test_shared_prebuilt_index_matches_fresh_one(self):
        query = chase(star_query(3), None)
        index = PathIndex(query_paths(query))
        for view in (star_view(3), condition_view(1)):
            chased = chase(view, None)
            assert find_mappings(chased, query, index=index) == \
                find_mappings(chased, query)


# --------------------------------------------------------------------------
# Fast chase kernels vs their legacy counterparts
# --------------------------------------------------------------------------

class TestChaseLegacyParity:
    CASES = [
        (query_q3, None),
        (query_q7, None),
        (query_q3, "dtd"),
        (query_q7, "dtd"),
        (view_v1, "dtd"),
        (lambda: star_query(4), None),
        (lambda: k_conditions_query(5), None),
    ]

    @pytest.mark.parametrize("make_query,constraints", CASES)
    def test_fast_and_legacy_chase_agree(self, make_query, constraints):
        dtd = paper_dtd() if constraints == "dtd" else None
        query = make_query()
        assert query_key(chase(query, dtd)) == \
            query_key(chase(query, dtd, legacy=True))

    def test_fast_chase_is_deterministic(self):
        dtd = paper_dtd()
        keys = {query_key(chase(query_q3(), dtd)) for _ in range(5)}
        assert len(keys) == 1


# --------------------------------------------------------------------------
# View plans: built once, embed the prepared view, invalidated on swap
# --------------------------------------------------------------------------

class TestViewPlans:
    def test_plan_is_cached_and_complete(self):
        session = RewriteSession({"V1": view_v1()})
        plan = session.view_plan("V1")
        assert isinstance(plan, ViewPlan)
        assert session.view_plan("V1") is plan
        assert plan.query is session.prepared_view("V1")
        assert list(plan.paths) == query_paths(plan.query)
        assert isinstance(plan.index, PathIndex)
        assert plan.variables == frozenset(plan.query.all_variables())

    def test_update_views_invalidates_plans(self):
        session = RewriteSession({"V1": view_v1()})
        plan = session.view_plan("V1")
        session.update_views({"V1": view_v1()})
        assert session.view_plan("V1") is not plan


# --------------------------------------------------------------------------
# Batched equivalence: precomputed right components change nothing
# --------------------------------------------------------------------------

class TestRightComponents:
    @pytest.mark.parametrize("left,right,expected", [
        (query_q3, query_q3, True),
        (query_q3, query_q7, False),
        (lambda: star_query(2), lambda: star_query(2), True),
    ])
    def test_precomputed_components_give_the_same_verdict(self, left,
                                                          right,
                                                          expected):
        target = [right()]
        components = decompose_program(prepare_program(target, None))
        assert programs_equivalent([left()], target) is expected
        assert programs_equivalent(
            [left()], target, right_components=components) is expected


# --------------------------------------------------------------------------
# Flag + metrics plumbing (mirrors the signature pre-filter's contract)
# --------------------------------------------------------------------------

class TestFlagAndMetrics:
    def views(self):
        return {"V1": condition_view(1), "V2": condition_view(2)}

    def test_no_path_index_gives_identical_rewritings(self):
        query = k_conditions_query(2)
        on = rewrite(query, self.views())
        off = rewrite(query, self.views(), path_index=False)
        assert fingerprint(on) == fingerprint(off)
        assert on.rewritings
        assert off.stats.index_hits == 0
        assert off.stats.index_skips == 0

    def test_index_counters_are_emitted(self):
        registry = MetricsRegistry()
        session = RewriteSession(self.views())
        result = session.rewrite(k_conditions_query(2), metrics=registry)
        counters = registry.snapshot()["counters"]
        assert counters["rewrite.index.hits"] == result.stats.index_hits
        assert counters["rewrite.index.skips"] == result.stats.index_skips
        assert result.stats.index_hits > 0

    def test_index_skips_on_label_disjoint_views(self):
        # condition_view(9) matches none of q's labels: with the
        # signature pre-filter off, only the path index stands between
        # it and a doomed mapping search.
        views = {"V1": condition_view(1), "V9": condition_view(9)}
        result = rewrite(k_conditions_query(1), views,
                         signature_prefilter=False)
        assert result.stats.index_skips > 0

    def test_memo_hit_across_path_index_settings(self):
        # Sound pruning: path_index is deliberately NOT part of the
        # result-memo key, so a warm session serves the same entry.
        from repro.rewriting import Explanation
        session = RewriteSession(self.views())
        query = k_conditions_query(2)
        cold = session.rewrite(query, explain=Explanation())
        warm_explain = Explanation()
        warm = session.rewrite(query, path_index=False,
                               explain=warm_explain)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm_explain.memo == "hit"

    def test_atoms_memo_replays_index_counts(self):
        session = RewriteSession(self.views())
        target = chase(k_conditions_query(2), None)
        cold_stats = RewriteStats()
        cold = session.candidate_atoms(target, stats=cold_stats)
        warm_stats = RewriteStats()
        warm = session.candidate_atoms(target, stats=warm_stats)
        assert warm == cold
        assert (warm_stats.index_hits, warm_stats.index_skips) == \
            (cold_stats.index_hits, cold_stats.index_skips)
        off_stats = RewriteStats()
        session.candidate_atoms(target, path_index=False,
                                stats=off_stats)
        assert off_stats.index_hits == 0
