"""Chase edge cases mined by the fuzzer, pinned as regression tests.

Each scenario here is the hand-minimized form of a shape the random
campaign exercises: degenerate bodies, set-variable-only bodies, and
queries where the oid key dependency has to fire more than once before
the fixpoint.  The replayable full cases live in ``tests/corpus/`` (see
``tests/oracle/test_corpus.py``); these unit tests assert the *specific*
chase behavior each shape must exhibit.
"""

import pytest

from repro.errors import ChaseContradictionError
from repro.logic.terms import Constant, FunctionTerm, Variable
from repro.oem import build_database, identical, obj
from repro.rewriting import chase
from repro.tsl import evaluate, parse_query, query_paths
from repro.tsl.ast import ObjectPattern, Query, SetPattern


def test_empty_body_is_a_chase_fixpoint():
    # The parser cannot produce a bodyless rule; compositions can.
    query = Query(ObjectPattern(FunctionTerm("f", (Constant("k"),)),
                                Constant("a"), Constant("v")),
                  ())
    chased = chase(query)
    assert chased.body == ()
    assert chase(chased).body == ()


def test_set_variable_only_body_reaches_fixpoint():
    # Both conditions constrain only set structure; the set-variable
    # extension must expand V (P provably has a subobject) and stop.
    query = parse_query(
        "<f(P) x 1> :- <P a V>@db AND <P a {<X Y Z>}>@db")
    chased = chase(query)
    assert identical_paths(chased, chase(chased))
    leaves = [path.leaf for path in query_paths(chased)]
    assert not any(isinstance(leaf, Variable) and leaf.name == "V"
                   for leaf in leaves)


def test_empty_set_only_body_is_stable():
    query = parse_query("<f(P) x 1> :- <P a {}>@db AND <P b {}>@db")
    with pytest.raises(ChaseContradictionError):
        # Same oid P with labels a and b: the label key dependency must
        # reject the constant clash.
        chase(query)


def test_empty_set_bodies_union_under_shared_oid():
    query = parse_query("<f(P) x 1> :- <P a {}>@db AND <P a {<X b V>}>@db")
    chased = chase(query)
    # Rule 3: {} union {<b V>} is {<b V>} -- the empty-set path dissolves.
    assert all(not isinstance(path.leaf, SetPattern) or path.leaf.patterns
               for path in query_paths(chased))


def test_key_dependency_fires_twice():
    # First firing: labels of P unify (L -> a).  Second firing: values of
    # P unify (W -> V).  One step is not enough; the fixpoint loop must
    # interleave.
    query = parse_query(
        "<f(P) x V> :- <P a V>@db AND <P L W>@db")
    chased = chase(query)
    paths = query_paths(chased)
    assert len(paths) == 1
    (path,) = paths
    assert path.steps[0][1] == Constant("a")
    db = build_database("db", [obj("a", "7", oid="p1")])
    assert identical(evaluate(query, db), evaluate(chased, db))


def test_key_dependency_contradiction_atomic_vs_set():
    query = parse_query("<f(P) x 1> :- <P a 7>@db AND <P a {<X b V>}>@db")
    with pytest.raises(ChaseContradictionError):
        chase(query)


def identical_paths(left: Query, right: Query) -> bool:
    return set(query_paths(left)) == set(query_paths(right))
