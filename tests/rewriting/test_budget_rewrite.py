"""Budgets, truncation flags, and tracing through the rewriting pipeline.

The adversarial workloads come from :mod:`repro.workloads.querygen`:
``star_query``/``star_view`` with identical labels exhibit the Section
5.1 mapping blowup (``star(4)`` runs for minutes unbudgeted), which is
exactly what the budgets exist to contain.
"""

import pytest

from repro.obs import Budget, MetricsRegistry, Tracer
from repro.rewriting import maximally_contained_rewritings, rewrite
from repro.rewriting.rewriter import RewriteResult, _test_candidate
from repro.tsl import parse_query
from repro.workloads import (condition_view, k_conditions_query, query_q3,
                             view_v1)
from repro.workloads.querygen import star_query, star_view


def star_workload(branches):
    return star_query(branches), {"V": star_view(branches)}


def two_view_workload():
    """One condition, two interchangeable views: two candidates tested."""
    query = parse_query('<f(P) result V> :- <P c V>@db')
    views = {
        "V1": parse_query('<view1(P) row V> :- <P c V>@db', name="V1"),
        "V2": parse_query('<view2(P) row V> :- <P c V>@db', name="V2"),
    }
    return query, views


class TestStepBudget:
    def test_expiry_mid_enumeration_returns_partial_result(self):
        query, views = star_workload(2)
        full = rewrite(query, views)
        assert full.rewritings and not full.truncated

        budget = Budget(max_steps=700)
        partial = rewrite(query, views, budget=budget)
        assert partial.truncated is True
        assert partial.stats.truncated is True
        assert partial.stats.stop_reason == "steps"
        assert budget.exceeded
        # Partial results are preserved, never invented.
        assert len(partial.rewritings) < len(full.rewritings)
        full_queries = {str(r.query) for r in full.rewritings}
        assert {str(r.query) for r in partial.rewritings} <= full_queries

    def test_tiny_budget_yields_empty_but_clean_result(self):
        query, views = star_workload(2)
        result = rewrite(query, views, budget=Budget(max_steps=1))
        assert isinstance(result, RewriteResult)
        assert result.truncated is True
        assert result.rewritings == []

    def test_generous_budget_changes_nothing(self):
        result = rewrite(query_q3(), {"V1": view_v1()},
                         budget=Budget(max_steps=10_000_000))
        assert len(result.rewritings) == 1
        assert result.truncated is False
        assert result.stats.stop_reason is None


class TestDeadline:
    def test_expired_deadline_returns_truncated(self):
        clock_values = iter([0.0] + [10.0] * 1_000_000)
        budget = Budget(deadline_ms=50,
                        clock=lambda: next(clock_values))
        query, views = star_workload(2)
        result = rewrite(query, views, budget=budget)
        assert result.truncated is True
        assert result.stats.stop_reason == "deadline"

    def test_real_deadline_terminates_adversarial_search(self):
        # star(3) runs for minutes without a budget; the deadline must
        # stop it almost immediately with a clean partial result.
        query, views = star_workload(3)
        result = rewrite(query, views, budget=Budget(deadline_ms=50))
        assert result.truncated is True
        assert result.stats.stop_reason == "deadline"


class TestMaxCandidatesTruncation:
    def test_sets_truncated_flag(self):
        query, views = two_view_workload()
        full = rewrite(query, views)
        assert full.stats.candidates_tested == 2 and not full.truncated

        result = rewrite(query, views, max_candidates=1)
        assert result.stats.candidates_tested == 1
        assert result.truncated is True
        assert result.stats.stop_reason == "max_candidates"
        assert len(result.rewritings) == 1

    def test_unlimited_run_is_not_truncated(self):
        query, views = two_view_workload()
        assert rewrite(query, views).truncated is False


class TestContainedBudget:
    def test_contained_search_truncates_cleanly(self):
        query = k_conditions_query(3)
        views = {f"V{i}": condition_view(i) for i in (1, 2, 3)}
        outcome = maximally_contained_rewritings(
            query, views, budget=Budget(max_steps=10))
        assert outcome.truncated is True
        assert outcome.stop_reason == "steps"


class TestFailureCounters:
    def test_failed_chase_counted(self):
        target = parse_query('<f(P) ans V> :- <P pub V>@db')
        view = parse_query(
            '<v(P) pub {<c(X) L W>}> :- <P pub {<X L W>}>@db', name="V")
        # Same oid bound to two distinct constants: the chase contradicts.
        candidate = parse_query(
            '<f(P) ans V> :- <P pub V>@V AND <P x "a">@V AND <P y "b">@V')
        result = RewriteResult()
        accepted, verdict, _, _ = _test_candidate(candidate, target,
                                                  {"V": view}, None, result)
        assert accepted is None
        assert verdict == "failed-chase"
        assert result.stats.candidates_failed_chase == 1
        assert result.stats.candidates_failed_composition == 0

    def test_failed_composition_counted(self):
        target = parse_query('<f(P) ans V> :- <P pub V>@db')
        view = parse_query(
            '<v(P) pub {<c(X) L W>}> :- <P pub {<X L W>}>@db', name="V")
        # V binds a variable to the set-constructed view value: the one
        # corner compose() rejects with CompositionError.
        candidate = parse_query('<f(P) ans V> :- <P pub V>@V')
        result = RewriteResult()
        accepted, verdict, _, _ = _test_candidate(candidate, target,
                                                  {"V": view}, None, result)
        assert accepted is None
        assert verdict == "failed-composition"
        assert result.stats.candidates_failed_composition == 1
        assert result.stats.candidates_failed_chase == 0

    def test_stats_serialize_with_new_fields(self):
        result = rewrite(query_q3(), {"V1": view_v1()})
        stats = result.stats.to_json()
        for key in ("candidates_failed_chase",
                    "candidates_failed_composition", "truncated",
                    "stop_reason"):
            assert key in stats


class TestTracing:
    def test_span_tree_names_every_phase(self):
        tracer = Tracer()
        result = rewrite(query_q3(), {"V1": view_v1()}, tracer=tracer)
        assert len(result.rewritings) == 1
        names = {span.name for span in tracer.spans}
        assert {"rewrite", "prepare", "enumerate_mappings", "candidate",
                "chase", "compose", "equivalence"} <= names
        # Every span closed, with non-negative duration.
        for span in tracer.spans:
            assert span.end is not None
            assert span.duration >= 0
        (root,) = tracer.roots()
        assert root.name == "rewrite"
        assert root.duration > 0
        assert root.counters["rewritings"] == 1

    def test_candidate_spans_nest_pipeline_phases(self):
        tracer = Tracer()
        rewrite(query_q3(), {"V1": view_v1()}, tracer=tracer)
        candidates = [s for s in tracer.spans if s.name == "candidate"]
        assert candidates
        accepted = [s for s in candidates if s.attrs.get("accepted")]
        assert accepted
        child_names = {child.name
                       for span in accepted
                       for child in tracer.children(span)}
        assert {"chase", "compose", "equivalence"} <= child_names

    def test_budget_expiry_still_closes_spans(self):
        tracer = Tracer()
        query, views = star_workload(2)
        result = rewrite(query, views, tracer=tracer,
                         budget=Budget(max_steps=700))
        assert result.truncated
        (root,) = tracer.roots()
        assert root.attrs.get("truncated") == "steps"
        assert all(span.end is not None for span in tracer.spans)

    def test_metrics_recorded_when_registry_passed(self):
        registry = MetricsRegistry()
        rewrite(query_q3(), {"V1": view_v1()}, metrics=registry)
        counters = registry.snapshot()["counters"]
        assert counters["rewrite.runs"] == 1
        assert counters["rewrite.rewritings"] == 1
        assert counters["rewrite.candidates_tested"] >= 1

    def test_metrics_recorded_on_truncated_run(self):
        # Regression: stop_reason is a str on truncated runs and must not
        # be fed to Counter.inc (int += str raised TypeError, discarding
        # the partial result).
        registry = MetricsRegistry()
        query, views = star_workload(2)
        result = rewrite(query, views, budget=Budget(max_steps=700),
                         metrics=registry)
        assert result.truncated is True
        counters = registry.snapshot()["counters"]
        assert counters["rewrite.runs"] == 1
        assert counters["rewrite.truncated_runs"] == 1
        assert counters["rewrite.stopped.steps"] == 1
        assert "rewrite.stop_reason" not in counters
