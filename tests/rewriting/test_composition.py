"""Tests for query-view composition (Step 2A, Section 3.1)."""

import pytest

from repro.errors import CompositionError
from repro.oem import build_database, identical, obj
from repro.rewriting import chase, compose, minimize, programs_equivalent
from repro.rewriting.equivalence import prepare_program
from repro.tsl import evaluate, evaluate_program, parse_query


def _check_composition_semantics(candidate, views, db, view_data=None):
    """The composed rules over db must equal the candidate over the views."""
    view_data = view_data or {
        name: evaluate(view, db, answer_name=name)
        for name, view in views.items()}
    sources = {db.name: db, **view_data}
    direct = evaluate(candidate, sources)
    composed = compose(candidate, views)
    via = evaluate_program(composed, {db.name: db})
    assert identical(direct, via)
    return composed


class TestPaperComposition:
    def test_v1_compose_q4(self, v1):
        """(V1) o (Q4)n must be equivalent to (Q3) (Example 3.1)."""
        q4n = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr Y>}>@V1 AND "
            "<g(P) p {<h(X) v leland>}>@V1")
        q3 = parse_query("<f(P) stanford yes> :- <P p {<X Y leland>}>@db")
        composed = compose(q4n, {"V1": v1})
        assert composed
        assert programs_equivalent(composed, [q3])

    def test_v1_compose_q8_is_q9_not_q7(self, v1, q7):
        """Example 3.3: the composition of (Q8) is (Q9), not (Q7)."""
        q8 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr name> "
            "<h(X) v {<Z last stanford>}>}>@V1")
        q9 = parse_query(
            "<f(P) stanford yes> :- "
            "<P p {<X' name Z'>}>@db AND "
            "<P p {<X'' Y'' {<Z last stanford>}>}>@db")
        composed = compose(q8, {"V1": v1})
        assert programs_equivalent(composed, [q9])
        assert not programs_equivalent(composed, [q7])

    def test_q6_composition_semantics(self, v1, small_people):
        q6 = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr Y> "
            "<h(X) v {<Z last stanford>}>}>@V1")
        _check_composition_semantics(q6, {"V1": v1}, small_people)


class TestSemantics:
    """Composition must commute with evaluation on concrete data."""

    def test_simple_unfold(self, small_people):
        view = parse_query("<w(P) person {<n(X) nm V>}> :- "
                           "<P p {<X name V>}>@db", name="W")
        candidate = parse_query(
            "<f(P) x 1> :- <w(P) person {<n(X) nm {<L last stanford>}>}>@W")
        _check_composition_semantics(candidate, {"W": view}, small_people)

    def test_hanging_subgraph_navigation(self, small_people):
        # The view copies the whole person value; the candidate navigates
        # into the hanging subgraph.
        view = parse_query("<w(P) person V> :- <P p V>@db", name="W")
        candidate = parse_query(
            "<f(P) x 1> :- "
            "<w(P) person {<N name {<L last stanford>}>}>@W")
        composed = _check_composition_semantics(candidate, {"W": view},
                                                small_people)
        # The composed rule navigates db directly.
        assert all(c.source == "db" for rule in composed
                   for c in rule.body)

    def test_fusion_across_assignments(self):
        # g(Y) objects fuse across different X bindings; a chain through
        # the fused object must be witnessed by two body copies.
        db = build_database("db", [
            obj("a", [obj("b", "1", oid="y")], oid="x1"),
            obj("a", [obj("b", "2", oid="y2")], oid="x2"),
        ])
        view = parse_query(
            "<top(X) r {<g(V) item V>}> :- <X a {<Y b V>}>@db", name="W")
        candidate = parse_query(
            "<f(X) x V> :- <top(X) r {<g(V) item V>}>@W")
        _check_composition_semantics(candidate, {"W": view}, db)

    def test_multiple_resolution_choices_yield_union(self):
        view = parse_query(
            "<v(R) row {<m(C1) part W1> <m(C2) part W2>}> :- "
            "<R root {<C1 part W1>}>@db AND <R root {<C2 part W2>}>@db",
            name="W")
        candidate = parse_query(
            "<f(C) x W> :- <v(R) row {<m(C) part W>}>@W")
        composed = compose(candidate, {"W": view})
        assert len(composed) >= 1
        db = build_database("db", [
            obj("root", [obj("part", "p1"), obj("part", "p2")]),
        ])
        view_data = evaluate(view, db, answer_name="W")
        direct = evaluate(candidate, {"db": db, "W": view_data})
        via = evaluate_program(composed, {"db": db})
        assert identical(direct, via)

    def test_unsatisfiable_condition_gives_empty_union(self, v1):
        candidate = parse_query(
            "<f(P) x 1> :- <g(P) wrong-label {<h(X) v Z>}>@V1")
        assert compose(candidate, {"V1": v1}) == []

    def test_base_conditions_pass_through(self, v1):
        candidate = parse_query(
            "<f(P) x 1> :- <g(P) p {<h(X) v leland>}>@V1 AND "
            "<P p {<U phone N>}>@db")
        composed = compose(candidate, {"V1": v1})
        assert composed
        for rule in composed:
            assert all(c.source == "db" for c in rule.body)

    def test_empty_leaf_asserts_set_on_source(self, small_people):
        view = parse_query("<w(P) person V> :- <P p V>@db", name="W")
        candidate = parse_query(
            "<f(N) x 1> :- <w(P) person {<N name {}>}>@W")
        _check_composition_semantics(candidate, {"W": view}, small_people)

    def test_inexpressible_corner_raises(self):
        # Binding a variable to the value of a set-constructed view object
        # cannot be expressed over the source: the candidate is rejected.
        view = parse_query(
            "<w(P) person {<n(X) nm V>}> :- <P p {<X name V>}>@db",
            name="W")
        candidate = parse_query("<f(P) x 1> :- <w(P) person U>@W")
        with pytest.raises(CompositionError):
            compose(candidate, {"W": view})


class TestMinimizeComposition:
    def test_composition_minimizes_to_paper_size(self, v1):
        q4n = parse_query(
            "<f(P) stanford yes> :- "
            "<g(P) p {<pp(P,Y) pr Y>}>@V1 AND "
            "<g(P) p {<h(X) v leland>}>@V1")
        composed = compose(q4n, {"V1": v1})
        smallest = min(
            (minimize(chase(rule)) for rule in composed),
            key=lambda rule: len(rule.body))
        # The paper's (V1)o(Q4)n has two conditions.
        assert len(smallest.body) <= 2


class TestNestedViews:
    def test_view_over_view_unfolds(self, small_people):
        base_view = parse_query(
            "<w(P) person V> :- <P p V>@db", name="W")
        stacked = parse_query(
            "<u(P) outer {<un(N) inner {<L2 last stanford>}>}> :- "
            "<w(P) person {<N name {<L last stanford>}>}>@W AND "
            "<w(P) person {<N name {<L2 last stanford>}>}>@W",
            name="U")
        candidate = parse_query(
            "<f(P) x 1> :- <u(P) outer {<un(N) inner {<Z last S>}>}>@U")
        views = {"W": base_view, "U": stacked}
        composed = compose(candidate, views)
        assert composed
        for rule in composed:
            assert all(c.source == "db" for c in rule.body)
        # Semantics: candidate over materialized U == composed over db.
        w_data = evaluate(base_view, small_people, answer_name="W")
        u_data = evaluate(stacked, {"W": w_data}, answer_name="U")
        direct = evaluate(candidate, {"U": u_data})
        via = evaluate_program(composed, {"db": small_people})
        assert identical(direct, via)

    def test_cyclic_views_rejected(self):
        a = parse_query("<a(P) x V> :- <b(P) y V>@B", name="A")
        b = parse_query("<b(P) y V> :- <a(P) x V>@A", name="B")
        candidate = parse_query("<f(P) q V> :- <a(P) x V>@A")
        with pytest.raises(CompositionError, match="unfold"):
            compose(candidate, {"A": a, "B": b})
