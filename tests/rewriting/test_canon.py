"""Tests for canonical query forms and stable hashes (memo keys)."""

import pytest

from repro.oracle.gen import PROFILES, generate_case
from repro.rewriting import (canonicalize, chase, component_key,
                             condition_key, equivalent, program_key,
                             query_key)
from repro.rewriting.canon import rebase
from repro.tsl import parse_query
from repro.tsl.ast import Query
from repro.tsl.decompose import decompose_program
from repro.workloads import (condition_view, conference_query,
                             k_conditions_query, sigmod_97_query)


def reversed_body(query: Query) -> Query:
    return Query(query.head, tuple(reversed(query.body)), name=query.name)


class TestQueryKey:
    def test_stable_across_calls(self):
        q = sigmod_97_query()
        assert query_key(q) == query_key(q)

    def test_invariant_under_renaming(self):
        q = k_conditions_query(3)
        assert query_key(q) == query_key(q.rename_apart("renamed"))

    def test_invariant_under_body_reorder(self):
        q = k_conditions_query(3)
        assert query_key(q) == query_key(reversed_body(q))

    def test_invariant_under_both_at_once(self):
        q = sigmod_97_query()
        variant = reversed_body(q.rename_apart("x"))
        assert query_key(q) == query_key(variant)

    def test_distinct_queries_get_distinct_keys(self):
        keys = {query_key(condition_view(i)) for i in range(1, 6)}
        assert len(keys) == 5

    def test_constants_distinguish(self):
        assert query_key(conference_query("sigmod")) \
            != query_key(conference_query("vldb"))

    def test_structural_difference_distinguishes(self):
        left = parse_query("<f(X) r X> :- <X a Y>@db")
        right = parse_query("<f(X) r X> :- <X a Y>@db AND <Y b Z>@db")
        assert query_key(left) != query_key(right)


class TestCanonicalize:
    def test_canonical_query_is_equivalent(self):
        for q in (k_conditions_query(2), sigmod_97_query(),
                  conference_query("sigmod", 1997)):
            assert equivalent(q, canonicalize(q).query)

    def test_idempotent(self):
        canon = canonicalize(sigmod_97_query()).query
        again = canonicalize(canon)
        assert again.query == canon
        assert again.key == canonicalize(sigmod_97_query()).key

    def test_variables_use_canon_stem(self):
        canon = canonicalize(k_conditions_query(2)).query
        assert all(v.name.startswith("$")
                   for v in canon.all_variables())

    def test_forward_maps_original_variables(self):
        q = k_conditions_query(2)
        canon = canonicalize(q)
        assert set(canon.forward) == set(q.all_variables())


class TestRebase:
    def test_rebase_restores_probe_variables(self):
        q = k_conditions_query(2)
        renamed = q.rename_apart("z")
        stored = canonicalize(q)
        probe = canonicalize(renamed)
        assert stored.key == probe.key
        rebased = rebase(chase(q), stored, probe)
        assert rebased == chase(renamed)

    def test_rebase_keeps_fresh_chase_variables_distinct(self):
        # sigmod_97's chase introduces fresh W_n variables; rebasing
        # into an alpha-variant's space must not capture them.
        q = sigmod_97_query()
        renamed = q.rename_apart("w")
        rebased = rebase(chase(q), canonicalize(q), canonicalize(renamed))
        assert query_key(rebased) == query_key(chase(renamed))


class TestOtherKeys:
    def test_condition_key_rename_invariant(self):
        q = k_conditions_query(1)
        renamed = q.rename_apart("r")
        assert condition_key(q.body[0]) == condition_key(renamed.body[0])
        assert condition_key(q.body[0]) \
            != condition_key(conference_query("sigmod").body[0])

    def test_program_key_order_and_rename_invariant(self):
        a, b = condition_view(1), condition_view(2)
        assert program_key([a, b]) == program_key([b.rename_apart("p"), a])
        assert program_key([a]) != program_key([a, b])

    def test_component_key_rename_invariant(self):
        q = sigmod_97_query()
        left = decompose_program([q])
        right = decompose_program([q.rename_apart("c")])
        assert sorted(component_key(c) for c in left) \
            == sorted(component_key(c) for c in right)


@pytest.mark.parametrize("seed", range(0, 18, 3))
@pytest.mark.parametrize("profile", ["conjunctive", "copy"])
def test_key_invariance_on_generated_cases(seed, profile):
    """Property: keys are rename/reorder invariant on fuzzer queries."""
    case = generate_case(seed, PROFILES[profile])
    for q in (case.query, *case.views.values()):
        variant = reversed_body(q.rename_apart("v"))
        assert query_key(q) == query_key(variant)
        assert canonicalize(q).query == canonicalize(variant).query
