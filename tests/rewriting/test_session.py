"""Tests for memoized rewrite sessions (prepared views + memo tables)."""

import pytest

from repro.errors import ChaseContradictionError
from repro.obs import MetricsRegistry
from repro.rewriting import (MemoTable, RewriteSession, chase, query_key,
                             rewrite)
from repro.rewriting.session import _MISS
from repro.tsl import parse_query
from repro.workloads import (condition_view, conference_query,
                             k_conditions_query, sigmod_97_query)


def fingerprint(result):
    return {(query_key(r.query), tuple(sorted(r.views_used)))
            for r in result.rewritings}


@pytest.fixture
def views():
    return {"V1": condition_view(1), "V2": condition_view(2)}


class TestMemoTable:
    def test_get_put_and_accounting(self):
        table = MemoTable("t", capacity=8)
        assert table.get("a") is _MISS
        table.put("a", 1)
        assert table.get("a") == 1
        assert (table.hits, table.misses) == (1, 1)

    def test_lru_eviction(self):
        table = MemoTable("t", capacity=2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a")          # refresh a; b is now LRU
        table.put("c", 3)
        assert table.peek("b") is _MISS
        assert table.peek("a") == 1
        assert table.evictions == 1

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        table = MemoTable("probe", capacity=1, metrics=metrics)
        table.get("a")
        table.put("a", 1)
        table.get("a")
        table.put("b", 2)       # evicts a
        counters = metrics.snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.evictions"] == 1
        assert counters["cache.probe.hits"] == 1

    def test_stats_shape(self):
        table = MemoTable("t", capacity=4)
        table.put("a", 1)
        assert table.stats() == {"size": 1, "capacity": 4, "hits": 0,
                                 "misses": 0, "evictions": 0}


class TestSessionChase:
    def test_matches_plain_chase(self, views):
        session = RewriteSession(views)
        q = sigmod_97_query()
        assert session.chase(q) == chase(q)

    def test_second_call_hits(self, views):
        session = RewriteSession(views)
        q = sigmod_97_query()
        first = session.chase(q)
        second = session.chase(q)
        assert first == second
        assert session.stats()["chase"]["hits"] == 1

    def test_alias_hit_is_rebased(self, views):
        session = RewriteSession(views)
        q = sigmod_97_query()
        renamed = q.rename_apart("alias")
        session.chase(q)
        rebased = session.chase(renamed)
        # Served from the memo, but in the probe's variable space.
        assert session.stats()["chase"]["hits"] == 1
        assert rebased == chase(renamed)

    def test_contradiction_is_memoized(self, views):
        session = RewriteSession(views)
        bad = parse_query('<f(X) r X> :- <X a "one">@db AND <X a "two">@db')
        for _ in range(2):
            with pytest.raises(ChaseContradictionError):
                session.chase(bad)
        assert session.stats()["chase"]["hits"] == 1

    def test_disabled_session_never_memoizes(self, views):
        session = RewriteSession(views, enabled=False)
        q = sigmod_97_query()
        assert session.chase(q) == chase(q)
        session.chase(q)
        stats = session.stats()["chase"]
        assert stats["size"] == 0
        assert stats["hits"] == 0


class TestSessionEquivalence:
    def test_verdict_memoized_and_symmetric(self, views):
        session = RewriteSession(views)
        left = [k_conditions_query(2)]
        right = [k_conditions_query(2).rename_apart("e")]
        assert session.programs_equivalent(left, right)
        assert session.programs_equivalent(left, right)
        assert session.programs_equivalent(right, left)
        assert session.stats()["equivalence"]["hits"] == 2

    def test_minimize_memoized(self, views):
        session = RewriteSession(views)
        q = sigmod_97_query()
        first = session.minimize(q)
        assert session.minimize(q) == first
        assert session.stats()["minimize"]["hits"] == 1


class TestSessionRewrite:
    def test_same_rewritings_as_plain(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        plain = rewrite(q, views)
        assert fingerprint(session.rewrite(q)) == fingerprint(plain)

    def test_warm_result_served_from_memo(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        cold = session.rewrite(q)
        warm = session.rewrite(q)
        assert fingerprint(cold) == fingerprint(warm)
        assert session.stats()["rewrite"]["hits"] == 1

    def test_alpha_variant_recomputed_not_misserved(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        session.rewrite(q)
        renamed = q.rename_apart("v")
        warm = session.rewrite(renamed)
        # Exact-compare fails, so the variant re-runs the search in its
        # own variable space -- and still agrees canonically.
        assert session.stats()["rewrite"]["hits"] == 0
        assert fingerprint(warm) == fingerprint(rewrite(renamed, views))

    def test_flags_partition_the_memo(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        session.rewrite(q)
        total = session.rewrite(q, total_only=True)
        assert session.stats()["rewrite"]["hits"] == 0
        assert all(set(r.query.sources()) <= set(views)
                   for r in total.rewritings)

    def test_prepared_views_chased_once(self, views):
        session = RewriteSession(views)
        v1 = session.prepared_view("V1")
        assert session.prepared_view("V1") is v1

    def test_update_views_keeps_chase_memo(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        session.rewrite(q)
        before = session.stats()["chase"]["size"]
        assert before > 0
        session.update_views(views)
        assert session.stats()["chase"]["size"] == before
        assert session.stats()["rewrite"]["size"] == 0
        warm = session.rewrite(q)
        assert fingerprint(warm) == fingerprint(rewrite(q, views))


class TestTruncatedResults:
    def test_truncated_result_not_stored(self, views):
        session = RewriteSession(views)
        q = k_conditions_query(2)
        truncated = session.rewrite(q, max_candidates=0)
        assert truncated.truncated
        assert session.stats()["rewrite"]["size"] == 0
