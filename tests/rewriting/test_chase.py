"""Tests for the chase with the set-variable extension (Section 3.2)."""

import pytest

from repro.errors import ChaseContradictionError
from repro.rewriting import chase, equivalent
from repro.tsl import parse_query, print_query, query_paths
from repro.tsl.ast import SetPattern


class TestExample34:
    """(Q11) chases to (Q10): the set variable becomes a set pattern."""

    def test_set_variable_becomes_pattern(self):
        q11 = parse_query(
            "<f(P) stan-student V> :- "
            "<P p {<U university stanford>}>@db AND <P p V>@db")
        chased = chase(q11)
        # V is gone; a fresh <X Y Z> pattern appears in body and head.
        assert "V" not in {v.name for v in chased.all_variables()}
        assert isinstance(chased.head.value, SetPattern)

    def test_chased_q11_equivalent_to_q10(self):
        q10 = parse_query(
            "<f(P) stan-student {<X Y Z>}> :- "
            "<P p {<U university stanford>}>@db AND <P p {<X Y Z>}>@db")
        q11 = parse_query(
            "<f(P) stan-student V> :- "
            "<P p {<U university stanford>}>@db AND <P p V>@db")
        assert equivalent(q10, q11)

    def test_head_is_rewritten_too(self):
        q11 = parse_query(
            "<f(P) x V> :- <P p {<U u 1>}>@db AND <P p V>@db")
        chased = chase(q11)
        assert isinstance(chased.head.value, SetPattern)


class TestKeyDependency:
    def test_labels_unify(self):
        q = parse_query("<f(P) x 1> :- <P a V>@db AND <P L W>@db")
        chased = chase(q)
        # L must be a: the oid key dependency determines the label.
        labels = {str(label) for path in query_paths(chased)
                  for _, label in path.steps}
        assert labels == {"a"}

    def test_conflicting_labels_raise(self):
        q = parse_query("<f(P) x 1> :- <P a V>@db AND <P b W>@db")
        with pytest.raises(ChaseContradictionError):
            chase(q)

    def test_values_unify(self):
        q = parse_query("<f(P) x V> :- <P a V>@db AND <P a 7>@db")
        chased = chase(q)
        assert str(chased.head.value) == "7"

    def test_conflicting_values_raise(self):
        q = parse_query("<f(P) x 1> :- <P a 7>@db AND <P a 8>@db")
        with pytest.raises(ChaseContradictionError):
            chase(q)

    def test_atomic_vs_set_raises(self):
        q = parse_query(
            "<f(P) x 1> :- <P a 7>@db AND <P a {<X b V>}>@db")
        with pytest.raises(ChaseContradictionError):
            chase(q)

    def test_duplicate_conditions_dropped(self):
        q = parse_query("<f(P) x V> :- <P a V>@db AND <P a V>@db")
        assert len(chase(q).body) == 1

    def test_variable_values_unify_across_occurrences(self):
        q = parse_query("<f(P) x V> :- <P a V>@db AND <P a W>@db")
        chased = chase(q)
        assert len(chased.body) == 1


class TestSaturation:
    """Rule 3 under normal form: shared oids graft their subtrees."""

    def test_subtree_grafts_across_prefixes(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<X a {<Y b 1>}>}>@db AND "
            "<Q p {<X a {<Z c 2>}>}>@db")
        chased = chase(q)
        rendered = print_query(chased)
        # X's children are asserted below both P and Q after the chase.
        assert rendered.count("<Y b 1>") >= 2
        assert rendered.count("<Z c 2>") >= 2

    def test_saturated_is_equivalent(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<X a {<Y b 1>}>}>@db AND "
            "<Q p {<X a {<Z c 2>}>}>@db")
        assert equivalent(q, chase(q))

    def test_no_grafting_without_shared_oids(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {<X a 1>}>@db AND <Q p {<Y b 2>}>@db")
        assert len(chase(q).body) == 2


class TestEmptySetSubsumption:
    def test_empty_leaf_absorbed_by_longer_path(self):
        q = parse_query(
            "<f(P) x 1> :- <P p {}>@db AND <P p {<X a V>}>@db")
        chased = chase(q)
        assert len(chased.body) == 1
        assert "{<X a V>}" in print_query(chased)

    def test_standalone_empty_leaf_kept(self):
        q = parse_query("<f(P) x 1> :- <P p {}>@db")
        assert len(chase(q).body) == 1

    def test_empty_set_variable_not_expanded(self):
        # {}-evidence alone must NOT expand a value variable: the object
        # may be an empty set and {<X Y Z>} would wrongly demand a child.
        q = parse_query("<f(P) x V> :- <P p {}>@db AND <P p V>@db")
        chased = chase(q)
        assert "V" in {v.name for v in chased.all_variables()}


class TestFixpoint:
    def test_chase_idempotent(self):
        q = parse_query(
            "<f(P) stan-student V> :- "
            "<P p {<U university stanford>}>@db AND <P p V>@db")
        once = chase(q)
        assert chase(once) == once

    def test_cascading_merges(self):
        q = parse_query(
            "<f(P) x 1> :- <P a {<X b V>}>@db AND "
            "<Q a {<X b 7>}>@db AND <P a {<Y c W>}>@db")
        chased = chase(q)
        # V unified with 7 through the shared X.
        assert "V" not in {v.name for v in chased.all_variables()}
