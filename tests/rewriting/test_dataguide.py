"""Tests for DataGuide construction and instance-derived constraints."""

from repro.oem import build_database, obj, ref
from repro.rewriting import build_dataguide, dtd_from_dataguide, rewrite
from repro.workloads import generate_people, view_v1, query_q7


def _db():
    return build_database("db", [
        obj("p", [obj("name", [obj("last", "a"), obj("first", "b")]),
                  obj("phone", "1")]),
        obj("p", [obj("name", [obj("last", "c")]),
                  obj("phone", "2"), obj("address", "x"),
                  obj("address", "y")]),
    ])


class TestBuildDataguide:
    def test_label_paths(self):
        guide = build_dataguide(_db())
        paths = set(guide.label_paths())
        assert ("p",) in paths
        assert ("p", "name", "last") in paths
        assert ("p", "address") in paths

    def test_deterministic(self):
        guide = build_dataguide(_db())
        # Strong DataGuide: each label path appears exactly once.
        paths = guide.label_paths()
        assert len(paths) == len(set(paths))

    def test_extents_cover_objects(self):
        db = _db()
        guide = build_dataguide(db)
        p_node = guide.children[0]["p"]
        assert len(guide.extent[p_node]) == 2

    def test_shared_objects(self):
        db = build_database("db", [
            obj("a", [ref("s")]), obj("b", [ref("s")]),
        ], extra=[obj("x", "v", oid="s")])
        guide = build_dataguide(db)
        assert ("a", "x") in guide.label_paths()
        assert ("b", "x") in guide.label_paths()

    def test_infer_middle_label(self):
        guide = build_dataguide(_db())
        assert guide.infer_middle_label("p", "last") == "name"

    def test_only_child_label(self):
        db = build_database("db", [obj("r", [obj("only", 1)])])
        guide = build_dataguide(db)
        assert guide.only_child_label("r") == "only"

    def test_functional_child_never_certain(self):
        guide = build_dataguide(_db())
        assert not guide.functional_child("p", "name")


class TestDtdFromDataguide:
    def test_cardinalities(self):
        dtd = dtd_from_dataguide(_db())
        # Every p has exactly one name and phone; addresses vary.
        assert dtd.functional_child("p", "name")
        assert dtd.functional_child("p", "phone")
        assert not dtd.functional_child("p", "address")

    def test_optional_child(self):
        dtd = dtd_from_dataguide(_db())
        specs = {s.name: s.multiplicity for s in dtd.children_of("name")}
        assert specs["last"] == "1"
        assert specs["first"] == "?"

    def test_atomic_labels(self):
        dtd = dtd_from_dataguide(_db())
        assert dtd.is_atomic("phone")
        assert not dtd.is_atomic("p")

    def test_enables_rewriting_like_a_dtd(self):
        """Instance constraints unlock (Q7) just as the paper's DTD does."""
        db = generate_people(30, seed=3)
        derived = dtd_from_dataguide(db)
        result = rewrite(query_q7(), {"V1": view_v1()}, constraints=derived)
        assert len(result.rewritings) == 1
