"""Tests for the general rewriting algorithm (Section 3.4)."""

import pytest

from repro.errors import ChaseContradictionError, RewritingError
from repro.rewriting import rewrite, view_instantiations
from repro.tsl import parse_query, print_query
from repro.workloads import condition_view, k_conditions_query


@pytest.fixture
def k2():
    return k_conditions_query(2)


@pytest.fixture
def two_views():
    return {"V1": condition_view(1), "V2": condition_view(2)}


class TestBasics:
    def test_total_rewriting_with_per_condition_views(self, k2, two_views):
        result = rewrite(k2, two_views, total_only=True)
        assert len(result.rewritings) >= 1
        best = result.rewritings[0]
        assert best.views_used == {"V1", "V2"}
        assert all(c.source in two_views for c in best.query.body)

    def test_partial_rewriting_mixes_sources(self, k2):
        views = {"V1": condition_view(1)}
        result = rewrite(k2, views)
        assert len(result.rewritings) >= 1
        sources = {c.source for c in result.rewritings[0].query.body}
        assert sources == {"V1", "db"}

    def test_no_relevant_view(self, k2):
        views = {"V9": condition_view(9)}
        result = rewrite(k2, views)
        assert result.rewritings == []
        assert result.stats.mappings == 0

    def test_views_as_sequence(self, k2):
        result = rewrite(k2, [condition_view(1), condition_view(2)])
        assert len(result.rewritings) >= 1

    def test_duplicate_view_names_rejected(self, k2):
        view = condition_view(1)
        with pytest.raises(RewritingError, match="duplicate"):
            rewrite(k2, [view, view])

    def test_head_preserved(self, k2, two_views):
        for rewriting in rewrite(k2, two_views):
            assert rewriting.query.head == k2.head

    def test_composition_evidence_attached(self, k2, two_views):
        [first, *_] = rewrite(k2, two_views).rewritings
        assert first.composition
        for rule in first.composition:
            assert all(c.source == "db" for c in rule.body)

    def test_contradictory_query_raises(self):
        q = parse_query("<f(P) x 1> :- <P a 1>@db AND <P a 2>@db")
        with pytest.raises(ChaseContradictionError):
            rewrite(q, {"V1": condition_view(1)})


class TestHeuristic:
    def test_heuristic_preserves_rewriting_set(self, k2, two_views):
        fast = rewrite(k2, two_views, heuristic=True)
        slow = rewrite(k2, two_views, heuristic=False)
        assert {print_query(r.query) for r in fast.rewritings} == \
            {print_query(r.query) for r in slow.rewritings}

    def test_heuristic_prunes_candidates(self):
        # The head binds only condition 1's variables, so non-covering
        # candidates are safe -- only the heuristic can skip them before
        # the expensive equivalence test.
        q = parse_query("<f(P1) x V1> :- <P1 c1 V1>@db AND "
                        "<P2 c2 V2>@db AND <P3 c3 V3>@db")
        views = {f"V{i}": condition_view(i) for i in (1, 2, 3)}
        fast = rewrite(q, views, heuristic=True)
        slow = rewrite(q, views, heuristic=False)
        assert fast.stats.candidates_tested < slow.stats.candidates_tested
        assert fast.stats.candidates_pruned_by_heuristic > 0

    def test_heuristic_equals_exhaustive_on_partial_head(self):
        q = parse_query("<f(P1) x V1> :- <P1 c1 V1>@db AND "
                        "<P2 c2 V2>@db")
        views = {f"V{i}": condition_view(i) for i in (1, 2)}
        fast = {print_query(r.query) for r in rewrite(q, views).rewritings}
        slow = {print_query(r.query)
                for r in rewrite(q, views, heuristic=False).rewritings}
        assert fast == slow


class TestControls:
    def test_first_only_stops_early(self, k2, two_views):
        result = rewrite(k2, two_views, first_only=True)
        assert len(result.rewritings) == 1

    def test_max_candidates_cap(self, k2, two_views):
        result = rewrite(k2, two_views, max_candidates=1)
        assert result.stats.candidates_tested <= 1

    def test_prune_subsumed(self, k2, two_views):
        pruned = rewrite(k2, two_views, prune_subsumed=True)
        unpruned = rewrite(k2, two_views, prune_subsumed=False)
        assert len(pruned.rewritings) <= len(unpruned.rewritings)
        # Every unpruned rewriting extends some pruned one ("trivial"
        # rewritings are suppressed, as the Results paragraph promises).
        pruned_bodies = [frozenset(r.query.body)
                         for r in pruned.rewritings]
        for rewriting in unpruned.rewritings:
            body = frozenset(rewriting.query.body)
            assert any(small <= body for small in pruned_bodies)

    def test_total_only_excludes_db_conditions(self, k2, two_views):
        result = rewrite(k2, two_views, total_only=True)
        for rewriting in result.rewritings:
            assert all(c.source != "db" for c in rewriting.query.body)


class TestStats:
    def test_stats_populated(self, k2, two_views):
        stats = rewrite(k2, two_views).stats
        assert stats.mappings == 2
        assert stats.candidates_enumerated > 0
        assert stats.candidates_tested > 0
        assert stats.rewritings == len(rewrite(k2, two_views).rewritings)

    def test_result_len_and_iter(self, k2, two_views):
        result = rewrite(k2, two_views)
        assert len(result) == len(list(result))
        assert result.queries == [r.query for r in result.rewritings]


class TestViewInstantiations:
    def test_atoms_carry_coverage(self, k2, two_views):
        from repro.rewriting.equivalence import prepare_program
        [target] = prepare_program([k2])
        atoms = view_instantiations(target, two_views)
        assert len(atoms) == 2
        assert {frozenset(a.covers) for a in atoms} == \
            {frozenset([0]), frozenset([1])}
        assert all(a.is_view for a in atoms)


class TestBoundK:
    """Lemma 5.2: at most k view heads are needed."""

    def test_candidate_size_bounded_by_k(self, two_views):
        q = k_conditions_query(2)
        for rewriting in rewrite(q, two_views, prune_subsumed=False):
            assert len(rewriting.query.body) <= 2


class TestMultiSource:
    def test_rewriting_respects_sources(self):
        query = parse_query(
            "<f(P,Q) pair 1> :- <P a V>@s1 AND <Q b W>@s2")
        views = {
            "VA": parse_query("<va(P) row V> :- <P a V>@s1", name="VA"),
            "VB": parse_query("<vb(Q) row W> :- <Q b W>@s2", name="VB"),
        }
        result = rewrite(query, views, total_only=True)
        assert result.rewritings
        best = result.rewritings[0]
        assert best.views_used == {"VA", "VB"}

    def test_wrong_source_view_is_irrelevant(self):
        query = parse_query("<f(P) x V> :- <P a V>@s1")
        views = {"V": parse_query("<v(P) row V> :- <P a V>@s2", name="V")}
        assert rewrite(query, views).rewritings == []

    def test_multi_source_rewriting_is_sound(self):
        from repro.oem import build_database, identical, obj
        from repro.tsl import evaluate
        s1 = build_database("s1", [obj("a", "u", oid="x1")])
        s2 = build_database("s2", [obj("b", "u", oid="y1"),
                                   obj("b", "w", oid="y2")])
        query = parse_query(
            "<f(P,Q) pair 1> :- <P a V>@s1 AND <Q b V>@s2")
        views = {
            "VA": parse_query("<va(P) row V> :- <P a V>@s1", name="VA"),
            "VB": parse_query("<vb(Q) row W> :- <Q b W>@s2", name="VB"),
        }
        result = rewrite(query, views, total_only=True)
        assert result.rewritings
        sources = {"s1": s1, "s2": s2,
                   "VA": evaluate(views["VA"], s1, answer_name="VA"),
                   "VB": evaluate(views["VB"], s2, answer_name="VB")}
        direct = evaluate(query, {"s1": s1, "s2": s2})
        for rewriting in result.rewritings:
            assert identical(direct, evaluate(rewriting.query, sources))
