"""The label-signature pre-filter: sound pruning, stats, memo plumbing."""

from repro.analysis.viewset import LabelSignatureIndex
from repro.obs import MetricsRegistry
from repro.rewriting import RewriteSession, paper_dtd, rewrite
from repro.rewriting.canon import query_key
from repro.rewriting.chase import chase
from repro.rewriting.rewriter import RewriteStats
from repro.tsl import parse_query
from repro.workloads import (condition_view, k_conditions_query, query_q3,
                             query_q7, view_v1)


def fingerprint(result):
    return {(query_key(r.query), tuple(sorted(r.views_used)))
            for r in result.rewritings}


def mixed_views(live=2, dead=5):
    """``live`` views covering q's labels plus ``dead`` label-disjoint ones."""
    views = {}
    for index in range(1, live + 1):
        view = condition_view(index)
        views[view.name] = view
    for index in range(100, 100 + dead):
        view = condition_view(index)
        views[view.name] = view
    return views


class TestPruning:
    def test_dead_views_are_pruned_and_results_identical(self):
        query = k_conditions_query(2)
        views = mixed_views(live=2, dead=5)
        on = rewrite(query, views)
        off = rewrite(query, views, signature_prefilter=False)
        assert fingerprint(on) == fingerprint(off)
        assert on.rewritings
        assert on.stats.views_pruned_signature == 5
        assert off.stats.views_pruned_signature == 0

    def test_live_views_are_never_pruned(self):
        query = k_conditions_query(3)
        views = mixed_views(live=3, dead=0)
        result = rewrite(query, views)
        assert result.stats.views_pruned_signature == 0
        assert result.rewritings

    def test_parity_on_the_paper_workload(self):
        views = {"V1": view_v1()}
        for query in (query_q3(), query_q7()):
            for constraints in (None, paper_dtd()):
                on = rewrite(query, views, constraints)
                off = rewrite(query, views, constraints,
                              signature_prefilter=False)
                assert fingerprint(on) == fingerprint(off)

    def test_explicit_index_is_consulted(self):
        query = k_conditions_query(1)
        views = mixed_views(live=1, dead=3)
        index = LabelSignatureIndex.from_views(views)
        stats = RewriteStats()
        from repro.rewriting.rewriter import view_instantiations
        atoms = view_instantiations(chase(query, None), views,
                                    signature_index=index, stats=stats)
        assert stats.views_pruned_signature == 3
        assert {a.view for a in atoms if a.view} == {"V1"}


class TestMetrics:
    def test_pruned_counter_is_emitted(self):
        registry = MetricsRegistry()
        session = RewriteSession(mixed_views(live=2, dead=5))
        session.rewrite(k_conditions_query(2), metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["rewrite.pruned.signature"] == 5


class TestSessionPlumbing:
    def test_signature_index_is_cached_and_invalidated(self):
        session = RewriteSession(mixed_views())
        index = session.signature_index()
        assert session.signature_index() is index
        session.update_views({"V1": condition_view(1)})
        rebuilt = session.signature_index()
        assert rebuilt is not index
        assert len(rebuilt) == 1

    def test_memo_hit_across_prefilter_settings(self):
        # The pre-filter is sound, so it is deliberately NOT part of the
        # result-memo key: a warm session serves the same entry whether
        # the flag is on or off.
        from repro.rewriting import Explanation
        session = RewriteSession(mixed_views(live=2, dead=5))
        query = k_conditions_query(2)
        cold = session.rewrite(query, explain=Explanation())
        warm_explain = Explanation()
        warm = session.rewrite(query, signature_prefilter=False,
                               explain=warm_explain)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm_explain.memo == "hit"

    def test_atoms_memo_replays_the_pruned_count(self):
        session = RewriteSession(mixed_views(live=2, dead=5))
        target = chase(k_conditions_query(2), None)
        cold_stats = RewriteStats()
        cold = session.candidate_atoms(target, signature_prefilter=True,
                                       stats=cold_stats)
        warm_stats = RewriteStats()
        warm = session.candidate_atoms(target, signature_prefilter=True,
                                       stats=warm_stats)
        assert warm == cold
        assert cold_stats.views_pruned_signature == 5
        assert warm_stats.views_pruned_signature == 5

    def test_atoms_memo_keys_include_the_flag(self):
        session = RewriteSession(mixed_views(live=2, dead=5))
        target = chase(k_conditions_query(2), None)
        on_stats = RewriteStats()
        on = session.candidate_atoms(target, signature_prefilter=True,
                                     stats=on_stats)
        off_stats = RewriteStats()
        off = session.candidate_atoms(target, signature_prefilter=False,
                                      stats=off_stats)
        assert off_stats.views_pruned_signature == 0
        # Sound pruning: the surviving atoms are identical either way.
        assert {str(a.condition) for a in on} == \
            {str(a.condition) for a in off}

    def test_disabled_session_still_prunes(self):
        query = k_conditions_query(2)
        session = RewriteSession(mixed_views(live=2, dead=5),
                                 enabled=False)
        result = session.rewrite(query)
        assert result.stats.views_pruned_signature == 5
        assert fingerprint(result) == fingerprint(
            rewrite(query, mixed_views(live=2, dead=5)))


class TestExplainParity:
    def test_prefilter_does_not_change_the_rewriting_set_in_explain(self):
        from repro.rewriting import Explanation
        query = parse_query("<f(P) ans V> :- <P c1 V>@db")
        views = mixed_views(live=1, dead=4)
        on, off = Explanation(), Explanation()
        r_on = rewrite(query, views, explain=on)
        r_off = rewrite(query, views, explain=off,
                        signature_prefilter=False)
        assert fingerprint(r_on) == fingerprint(r_off)
        assert on.rewritings == off.rewritings
        pruned = [m for m in on.mappings
                  if m.verdict == "pruned-signature"]
        assert len(pruned) == 4
        assert all(m.verdict is None for m in off.mappings)
