"""Tests for the TSL equivalence test (Section 4, Theorems 4.2-4.3)."""

from repro.rewriting import equivalent, minimize, programs_equivalent
from repro.rewriting.equivalence import prepare_program
from repro.tsl import parse_query, query_paths


class TestEquivalent:
    def test_reflexive(self):
        q = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        assert equivalent(q, q)

    def test_alpha_renaming(self):
        a = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        b = parse_query("<f(Q) x W> :- <Q a {<Y b W>}>@db")
        assert equivalent(a, b)

    def test_redundant_condition_is_equivalent(self):
        a = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        b = parse_query(
            "<f(P) x V> :- <P a {<X b V>}>@db AND <P a {<Y b W>}>@db")
        assert equivalent(a, b)

    def test_constant_filter_not_equivalent(self):
        a = parse_query("<f(P) x V> :- <P a {<X b V>}>@db")
        b = parse_query("<f(P) x 1> :- <P a {<X b 1>}>@db")
        assert not equivalent(a, b)

    def test_head_label_matters(self):
        a = parse_query("<f(P) x V> :- <P a V>@db")
        b = parse_query("<f(P) y V> :- <P a V>@db")
        assert not equivalent(a, b)

    def test_head_oid_functor_matters(self):
        a = parse_query("<f(P) x V> :- <P a V>@db")
        b = parse_query("<g(P) x V> :- <P a V>@db")
        assert not equivalent(a, b)

    def test_head_structure_matters(self):
        a = parse_query("<f(P) x V> :- <P a V>@db")
        b = parse_query("<f(P) x {<g(P) y V>}> :- <P a V>@db")
        assert not equivalent(a, b)

    def test_depth_difference(self):
        a = parse_query("<f(P) x 1> :- <P a {<X b V>}>@db")
        b = parse_query("<f(P) x 1> :- <P a {<X b {<Y c V>}>}>@db")
        assert not equivalent(a, b)

    def test_source_matters(self):
        a = parse_query("<f(P) x V> :- <P a V>@db1")
        b = parse_query("<f(P) x V> :- <P a V>@db2")
        assert not equivalent(a, b)

    def test_normal_form_does_not_matter(self):
        branching = parse_query(
            "<f(P) x 1> :- <P a {<X b V> <Y c W>}>@db")
        split = parse_query(
            "<f(P) x 1> :- <P a {<X b V>}>@db AND <P a {<Y c W>}>@db")
        assert equivalent(branching, split)

    def test_chase_applied_before_comparison(self):
        # Q10/Q11 equivalence needs the set-variable chase first.
        q10 = parse_query(
            "<f(P) s {<X Y Z>}> :- <P p {<U u 1>}>@db AND <P p {<X Y Z>}>@db")
        q11 = parse_query(
            "<f(P) s V> :- <P p {<U u 1>}>@db AND <P p V>@db")
        assert equivalent(q10, q11)


class TestUnions:
    def test_union_covering_single(self):
        single = [parse_query("<f(P) x V> :- <P a {<X b V>}>@db")]
        union = [
            parse_query("<f(P) x V> :- <P a {<X b V>}>@db"),
            parse_query("<f(P) x V> :- <P a {<X b V> <Y c W>}>@db"),
        ]
        # The second rule is contained in the first: union == single.
        assert programs_equivalent(union, single)

    def test_genuinely_larger_union(self):
        single = [parse_query("<f(P) x V> :- <P a {<X b V>}>@db")]
        union = [
            parse_query("<f(P) x V> :- <P a {<X b V>}>@db"),
            parse_query("<f(P) x V> :- <P c {<X b V>}>@db"),
        ]
        assert not programs_equivalent(union, single)

    def test_contradictory_rule_drops_out(self):
        single = [parse_query("<f(P) x V> :- <P a {<X b V>}>@db")]
        union = [
            parse_query("<f(P) x V> :- <P a {<X b V>}>@db"),
            # This rule chases to a contradiction (label conflict on P):
            parse_query("<f(P) x V> :- <P a {<X b V>}>@db AND <P c W>@db"),
        ]
        assert programs_equivalent(union, single)

    def test_empty_programs(self):
        assert programs_equivalent([], [])
        assert not programs_equivalent(
            [], [parse_query("<f(P) x V> :- <P a V>@db")])

    def test_rules_split_across_heads(self):
        # Two rules contributing parts of one graph vs one rule building
        # it whole (the fusion phenomenon of Section 4).
        whole = [parse_query(
            "<f(P) rec {<g1(P) u U> <g2(P) w W>}> :- "
            "<P a {<X u U>}>@db AND <P a {<Y w W>}>@db")]
        split = [
            parse_query("<f(P) rec {<g1(P) u U>}> :- "
                        "<P a {<X u U>}>@db AND <P a {<Y w W>}>@db"),
            parse_query("<f(P) rec {<g2(P) w W>}> :- "
                        "<P a {<X u U>}>@db AND <P a {<Y w W>}>@db"),
        ]
        assert programs_equivalent(whole, split)

    def test_split_without_join_not_equivalent(self):
        whole = [parse_query(
            "<f(P) rec {<g1(P) u U> <g2(P) w W>}> :- "
            "<P a {<X u U>}>@db AND <P a {<Y w W>}>@db")]
        split = [
            parse_query("<f(P) rec {<g1(P) u U>}> :- <P a {<X u U>}>@db"),
            parse_query("<f(P) rec {<g2(P) w W>}> :- <P a {<Y w W>}>@db"),
        ]
        # The split version also fires when only one of u/w exists.
        assert not programs_equivalent(whole, split)


class TestMinimize:
    def test_redundant_path_removed(self):
        q = parse_query(
            "<f(P) x V> :- <P a {<X b V>}>@db AND <P a {<Y b W>}>@db")
        minimized = minimize(q)
        assert len(minimized.body) == 1
        assert equivalent(q, minimized)

    def test_head_variables_protected(self):
        q = parse_query(
            "<f(P,X) x V> :- <P a {<X b V>}>@db AND <P a {<Y b W>}>@db")
        minimized = minimize(q)
        # X is in the head: the X-path must survive.
        assert any("X" in str(c) for c in minimized.body)

    def test_core_of_triangle(self):
        q = parse_query(
            "<f(P) x 1> :- <P a {<X b 1>}>@db AND <P a {<Y b V>}>@db "
            "AND <P a {<Z b W>}>@db")
        assert len(minimize(q).body) == 1

    def test_nothing_to_remove(self):
        q = parse_query(
            "<f(P) x 1> :- <P a {<X b V>}>@db AND <P a {<Y c W>}>@db")
        assert len(minimize(q).body) == 2


class TestPrepareProgram:
    def test_contradiction_dropped(self):
        rules = [parse_query("<f(P) x 1> :- <P a 1>@db AND <P a 2>@db")]
        assert prepare_program(rules) == []

    def test_normalizes(self):
        rules = [parse_query("<f(P) x 1> :- <P a {<X b 1> <Y c 2>}>@db")]
        [prepared] = prepare_program(rules)
        assert len(prepared.body) == 2
