"""EXPLAIN provenance: the decision log for the Section 3.4 search."""

import json

from repro.rewriting import (Explanation, RewriteSession, paper_dtd,
                             rewrite)
from repro.tsl import parse_query
from repro.workloads import query_q3, query_q7, view_v1


def explain_rewrite(query, views, constraints=None, **kwargs):
    explanation = Explanation()
    result = rewrite(query, views, constraints, explain=explanation,
                     **kwargs)
    return result, explanation


class TestRunningExample:
    def test_q3_every_candidate_has_a_verdict(self):
        result, explanation = explain_rewrite(query_q3(),
                                              {"V1": view_v1()})
        assert result.rewritings
        assert explanation.candidates
        assert all(c.verdict for c in explanation.candidates)
        assert any(c.verdict == "accepted" for c in explanation.candidates)

    def test_q3_mapping_recorded_with_substitution(self):
        _, explanation = explain_rewrite(query_q3(), {"V1": view_v1()})
        found = [m for m in explanation.mappings if m.found]
        assert found and found[0].view == "V1"
        assert "P' -> P" in found[0].substitution
        assert found[0].covers == (0,)

    def test_accepted_candidate_names_its_views(self):
        _, explanation = explain_rewrite(query_q3(), {"V1": view_v1()})
        accepted = [c for c in explanation.candidates
                    if c.verdict == "accepted"]
        assert accepted and accepted[0].views == ("V1",)


class TestDtdGatedRewriting:
    """Example 3.3/3.5: Q7 over V1 rewrites *because* of the DTD."""

    def test_without_dtd_equivalence_fails_naming_the_component(self):
        result, explanation = explain_rewrite(query_q7(),
                                              {"V1": view_v1()})
        assert not result.rewritings
        failed = [c for c in explanation.candidates
                  if c.verdict == "failed-equivalence"]
        assert failed
        assert "no containment mapping" in failed[0].reason
        detail = dict(failed[0].detail)
        assert detail["component_kind"] in ("top", "member", "object")
        assert "top(" in detail["component"] or \
            "member(" in detail["component"]

    def test_with_dtd_the_same_candidate_is_accepted(self):
        result, explanation = explain_rewrite(query_q7(),
                                              {"V1": view_v1()},
                                              paper_dtd())
        assert result.rewritings
        assert any(c.verdict == "accepted"
                   for c in explanation.candidates)
        assert explanation.constraints is not None


class TestPrunedCandidates:
    def test_heuristic_prune_names_the_uncovered_condition(self):
        query = parse_query('<f(P) ans yes> :- <P a {<X b Y>}>@db AND '
                            '<P a {<X2 c Z>}>@db')
        view = parse_query('<g(P) va {<h(X) b2 Y>}> :- '
                           '<P a {<X b Y>}>@db', name="VA")
        _, explanation = explain_rewrite(query, {"VA": view},
                                         total_only=True)
        pruned = [c for c in explanation.candidates
                  if c.verdict == "pruned-heuristic"]
        assert pruned
        assert "uncovered" in pruned[0].reason
        assert "<P a {<X2 c Z>}>@db" in pruned[0].reason

    def test_refuted_mapping_reports_the_obstacle(self):
        # With the signature pre-filter off, the mapping enumerator
        # itself refutes the view and names the first failing label.
        query = parse_query('<f(P) ans yes> :- <P a {<X b Y>}>@db')
        view = parse_query('<g(P) vz {<h(X) z2 Y>}> :- '
                           '<P zzz {<X qqq Y>}>@db', name="VZ")
        _, explanation = explain_rewrite(query, {"VZ": view},
                                         signature_prefilter=False)
        refuted = [m for m in explanation.mappings if not m.found]
        assert refuted and refuted[0].view == "VZ"
        assert refuted[0].verdict is None
        assert "label zzz" in refuted[0].obstacle

    def test_signature_prefilter_prunes_before_enumeration(self):
        # Same configuration with the pre-filter on (the default): the
        # view is skipped before Step 1A, with the missing labels named.
        query = parse_query('<f(P) ans yes> :- <P a {<X b Y>}>@db')
        view = parse_query('<g(P) vz {<h(X) z2 Y>}> :- '
                           '<P zzz {<X qqq Y>}>@db', name="VZ")
        result, explanation = explain_rewrite(query, {"VZ": view})
        pruned = [m for m in explanation.mappings
                  if m.verdict == "pruned-signature"]
        assert pruned and pruned[0].view == "VZ"
        assert not pruned[0].found
        assert "qqq" in pruned[0].obstacle and "zzz" in pruned[0].obstacle
        assert result.stats.views_pruned_signature == 1
        assert pruned[0].to_json()["verdict"] == "pruned-signature"
        assert "pruned (signature)" in explanation.render_text()


class TestMemoReplay:
    def test_memo_hit_replays_the_identical_explanation(self):
        session = RewriteSession({"V1": view_v1()})
        cold = Explanation()
        session.rewrite(query_q3(), explain=cold)
        warm = Explanation()
        session.rewrite(query_q3(), explain=warm)
        assert cold.memo is None
        assert warm.memo == "hit"
        # Acceptance criterion: the JSON is byte-identical across the
        # memoized and unmemoized runs (memo provenance rides outside).
        assert json.dumps(cold.to_json(), sort_keys=True) == \
            json.dumps(warm.to_json(), sort_keys=True)

    def test_memo_hit_shows_in_text_rendering_only(self):
        session = RewriteSession({"V1": view_v1()})
        session.rewrite(query_q3(), explain=Explanation())
        warm = Explanation()
        session.rewrite(query_q3(), explain=warm)
        assert "memo: hit" in warm.render_text()
        assert "memo" not in json.dumps(warm.to_json())

    def test_entry_stored_without_explanation_is_upgraded(self):
        session = RewriteSession({"V1": view_v1()})
        session.rewrite(query_q3())  # stored with no decision log
        explanation = Explanation()
        session.rewrite(query_q3(), explain=explanation)
        assert explanation.memo is None  # honest miss: recomputed
        warm = Explanation()
        session.rewrite(query_q3(), explain=warm)
        assert warm.memo == "hit"


class TestSerialization:
    def test_json_is_schema_versioned_and_serializable(self):
        _, explanation = explain_rewrite(query_q3(), {"V1": view_v1()})
        payload = explanation.to_json()
        assert payload["schema_version"] == 1
        json.dumps(payload)  # must not raise

    def test_render_text_sections(self):
        _, explanation = explain_rewrite(query_q3(), {"V1": view_v1()})
        text = explanation.render_text()
        assert "step 1A -- containment mappings:" in text
        assert "candidates (" in text
        assert "rewritings (1):" in text
