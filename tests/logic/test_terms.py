"""Unit tests for the Herbrand term algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.logic.terms import (Constant, FunctionTerm, SetValue, Variable,
                               const, fn, rename_term, var, variables_of)


class TestConstant:
    def test_is_ground(self):
        assert Constant("a").is_ground()

    def test_no_variables(self):
        assert list(Constant("a").variables()) == []

    def test_substitute_identity(self):
        c = Constant("a")
        assert c.substitute({Variable("X"): Constant("b")}) is c

    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_str(self):
        assert str(Constant("sigmod")) == "sigmod"
        assert str(Constant(1997)) == "1997"

    def test_numeric_values(self):
        assert Constant(3).is_ground()
        assert Constant(3.5).value == 3.5


class TestVariable:
    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_variables_yields_self(self):
        v = Variable("X")
        assert list(v.variables()) == [v]

    def test_substitute_bound(self):
        assert Variable("X").substitute(
            {Variable("X"): Constant("a")}) == Constant("a")

    def test_substitute_unbound(self):
        v = Variable("X")
        assert v.substitute({Variable("Y"): Constant("a")}) == v

    def test_distinct_from_constant(self):
        assert Variable("X") != Constant("X")


class TestFunctionTerm:
    def test_ground_when_args_ground(self):
        assert fn("f", const("a"), const("b")).is_ground()
        assert not fn("f", var("X")).is_ground()

    def test_variables_with_repetition(self):
        term = fn("f", var("X"), fn("g", var("X"), var("Y")))
        assert list(term.variables()) == [var("X"), var("X"), var("Y")]

    def test_variables_of_deduplicates(self):
        term = fn("f", var("X"), var("X"))
        assert variables_of(term) == {var("X")}

    def test_substitute_recursive(self):
        term = fn("f", var("X"), fn("g", var("Y")))
        result = term.substitute({var("X"): const("a"),
                                  var("Y"): const("b")})
        assert result == fn("f", const("a"), fn("g", const("b")))

    def test_equality_structural(self):
        assert fn("f", var("X")) == fn("f", var("X"))
        assert fn("f", var("X")) != fn("g", var("X"))
        assert fn("f", var("X")) != fn("f", var("X"), var("Y"))

    def test_str(self):
        assert str(fn("f", var("P"), const(10))) == "f(P,10)"

    def test_hashable(self):
        assert len({fn("f", var("X")), fn("f", var("X"))}) == 1


class TestSetValue:
    def test_equality_ignores_source(self):
        members = frozenset([const("a")])
        assert SetValue(members, "db1") == SetValue(members, "db2")

    def test_hash_ignores_source(self):
        members = frozenset([const("a")])
        assert hash(SetValue(members, "db1")) == hash(SetValue(members, "x"))

    def test_inequality_on_members(self):
        assert SetValue(frozenset([const("a")])) != SetValue(
            frozenset([const("b")]))

    def test_is_ground(self):
        assert SetValue(frozenset()).is_ground()

    def test_substitute_identity(self):
        sv = SetValue(frozenset([const("a")]))
        assert sv.substitute({var("X"): const("b")}) is sv

    def test_never_equals_constant(self):
        assert SetValue(frozenset()) != const("a")


class TestRename:
    def test_rename_term(self):
        term = fn("f", var("X"), const("a"))
        assert rename_term(term, "_1") == fn("f", var("X_1"), const("a"))

    def test_rename_ground_unchanged(self):
        term = fn("f", const("a"))
        assert rename_term(term, "_1") == term


@given(st.text(alphabet="abcXYZ", min_size=1, max_size=5))
def test_variable_roundtrip_name(name):
    assert Variable(name).name == name


@given(st.integers() | st.text(max_size=10))
def test_constant_substitution_is_noop(value):
    c = Constant(value)
    assert c.substitute({Variable("X"): Constant(0)}) == c
