"""Unit tests for the Datalog engine with function symbols."""

import pytest

from repro.logic.datalog import (Atom, Database, DatalogError, Literal, Rule,
                                 evaluate, fact, query, rule)
from repro.logic.terms import Constant, FunctionTerm, Variable, const, fn, var


def _edge(a, b):
    return fact("edge", const(a), const(b))


class TestRuleConstruction:
    def test_fact(self):
        f = fact("p", const("a"))
        assert f.is_fact()

    def test_unsafe_head_rejected(self):
        with pytest.raises(DatalogError, match="unsafe rule"):
            Rule(Atom("p", (var("X"),)),
                 (Literal(Atom("q", (var("Y"),))),))

    def test_unsafe_negation_rejected(self):
        with pytest.raises(DatalogError, match="unsafe negation"):
            Rule(Atom("p", (var("X"),)),
                 (Literal(Atom("q", (var("X"),))),
                  Literal(Atom("r", (var("Z"),)), positive=False)))

    def test_str_rendering(self):
        r = rule(Atom("p", (var("X"),)), Atom("q", (var("X"),)))
        assert str(r) == "p(X) :- q(X)."


class TestDatabase:
    def test_add_and_contains(self):
        db = Database()
        atom = Atom("p", (const("a"),))
        assert db.add(atom)
        assert not db.add(atom)
        assert atom in db
        assert len(db) == 1

    def test_non_ground_rejected(self):
        with pytest.raises(DatalogError):
            Database().add(Atom("p", (var("X"),)))


class TestEvaluation:
    def test_transitive_closure(self):
        x, y, z = var("X"), var("Y"), var("Z")
        rules = [
            _edge("a", "b"), _edge("b", "c"), _edge("c", "d"),
            rule(Atom("path", (x, y)), Atom("edge", (x, y))),
            rule(Atom("path", (x, z)), Atom("edge", (x, y)),
                 Atom("path", (y, z))),
        ]
        model = evaluate(rules)
        assert Atom("path", (const("a"), const("d"))) in model
        assert len(model.facts("path")) == 6

    def test_join(self):
        x, y = var("X"), var("Y")
        rules = [
            fact("r", const("a"), const(1)),
            fact("r", const("b"), const(2)),
            fact("s", const(1), const("u")),
            rule(Atom("t", (x, y)), Atom("r", (x, var("K"))),
                 Atom("s", (var("K"), y))),
        ]
        model = evaluate(rules)
        assert model.facts("t") == frozenset(
            [Atom("t", (const("a"), const("u")))])

    def test_function_symbols_in_heads(self):
        x = var("X")
        rules = [
            fact("base", const("a")),
            rule(Atom("wrapped", (fn("f", x),)), Atom("base", (x,))),
        ]
        model = evaluate(rules)
        assert Atom("wrapped", (fn("f", const("a")),)) in model

    def test_derivation_cap(self):
        x = var("X")
        runaway = [
            fact("n", const(0)),
            rule(Atom("n", (fn("s", x),)), Atom("n", (x,))),
        ]
        with pytest.raises(DatalogError, match="cap"):
            evaluate(runaway, max_derivations=50)

    def test_stratified_negation(self):
        x = var("X")
        rules = [
            fact("node", const("a")), fact("node", const("b")),
            fact("marked", const("a")),
            rule(Atom("unmarked", (x,)), Atom("node", (x,)),
                 Literal(Atom("marked", (x,)), positive=False)),
        ]
        model = evaluate(rules)
        assert model.facts("unmarked") == frozenset(
            [Atom("unmarked", (const("b"),))])

    def test_negation_across_strata(self):
        x, y = var("X"), var("Y")
        rules = [
            _edge("a", "b"),
            fact("node", const("a")), fact("node", const("b")),
            fact("node", const("c")),
            rule(Atom("reachable", (x,)), Atom("edge", (var("Z"), x))),
            rule(Atom("isolated", (x,)), Atom("node", (x,)),
                 Literal(Atom("reachable", (x,)), positive=False)),
        ]
        model = evaluate(rules)
        isolated = {a.args[0].value for a in model.facts("isolated")}
        assert isolated == {"a", "c"}

    def test_edb_seeding(self):
        model = evaluate([], edb=[Atom("p", (const("a"),))])
        assert Atom("p", (const("a"),)) in model


class TestQuery:
    def test_query_with_variables(self):
        model = evaluate([_edge("a", "b"), _edge("a", "c")])
        results = query(model, Atom("edge", (const("a"), var("X"))))
        values = {s.apply(var("X")) for s in results}
        assert values == {const("b"), const("c")}

    def test_query_no_match(self):
        model = evaluate([_edge("a", "b")])
        assert query(model, Atom("edge", (const("z"), var("X")))) == []

    def test_query_with_function_terms(self):
        model = evaluate([fact("p", fn("f", const("a")))])
        results = query(model, Atom("p", (fn("f", var("X")),)))
        assert len(results) == 1
        assert results[0].apply(var("X")) == const("a")
