"""Unit tests for substitutions."""

from hypothesis import given, strategies as st

from repro.logic.subst import EMPTY_SUBSTITUTION, Substitution
from repro.logic.terms import Constant, FunctionTerm, Variable, const, fn, var


class TestBasics:
    def test_empty(self):
        assert len(EMPTY_SUBSTITUTION) == 0
        assert EMPTY_SUBSTITUTION.apply(var("X")) == var("X")

    def test_apply_bound(self):
        s = Substitution({var("X"): const("a")})
        assert s.apply(var("X")) == const("a")

    def test_apply_inside_function_terms(self):
        s = Substitution({var("X"): const("a")})
        assert s.apply(fn("f", var("X"), var("Y"))) == \
            fn("f", const("a"), var("Y"))

    def test_contains_and_get(self):
        s = Substitution({var("X"): const("a")})
        assert var("X") in s
        assert var("Y") not in s
        assert s.get(var("Y")) is None
        assert s[var("X")] == const("a")

    def test_equality_and_hash(self):
        a = Substitution({var("X"): const("a")})
        b = Substitution({var("X"): const("a")})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_sorted(self):
        s = Substitution({var("B"): const(1), var("A"): const(2)})
        assert repr(s) == "[A -> 2, B -> 1]"


class TestBind:
    def test_bind_returns_new(self):
        s = Substitution()
        s2 = s.bind(var("X"), const("a"))
        assert var("X") not in s
        assert s2[var("X")] == const("a")

    def test_bind_rewrites_existing_rhs(self):
        s = Substitution({var("X"): fn("f", var("Y"))})
        s2 = s.bind(var("Y"), const("a"))
        assert s2.apply(var("X")) == fn("f", const("a"))

    def test_bind_keeps_idempotence(self):
        s = (Substitution()
             .bind(var("X"), fn("f", var("Y")))
             .bind(var("Y"), fn("g", var("Z")))
             .bind(var("Z"), const("a")))
        once = s.apply(fn("h", var("X")))
        assert s.apply(once) == once


class TestCompose:
    def test_compose_order(self):
        first = Substitution({var("X"): var("Y")})
        second = Substitution({var("Y"): const("a")})
        composed = first.compose(second)
        assert composed.apply(var("X")) == const("a")
        assert composed.apply(var("Y")) == const("a")

    def test_compose_preserves_later_bindings(self):
        first = Substitution({var("X"): const("a")})
        second = Substitution({var("Z"): const("b")})
        composed = first.compose(second)
        assert composed.apply(var("Z")) == const("b")

    def test_compose_matches_sequential_application(self):
        first = Substitution({var("X"): fn("f", var("Y"))})
        second = Substitution({var("Y"): const("c")})
        term = fn("g", var("X"), var("Y"))
        assert first.compose(second).apply(term) == \
            second.apply(first.apply(term))


_names = st.sampled_from(["X", "Y", "Z", "W"])
_consts = st.sampled_from(["a", "b", "c"])


@given(st.dictionaries(_names, _consts, max_size=3), _names)
def test_ground_bindings_are_idempotent(mapping, probe):
    s = Substitution({Variable(n): Constant(c) for n, c in mapping.items()})
    term = Variable(probe)
    assert s.apply(s.apply(term)) == s.apply(term)


@given(st.dictionaries(_names, _consts, max_size=3),
       st.dictionaries(_names, _consts, max_size=3))
def test_compose_associativity_on_ground(m1, m2):
    s1 = Substitution({Variable(n): Constant(c) for n, c in m1.items()})
    s2 = Substitution({Variable(n): Constant(c) for n, c in m2.items()})
    term = FunctionTerm("f", tuple(Variable(n) for n in ("X", "Y", "Z")))
    assert s1.compose(s2).apply(term) == s2.apply(s1.apply(term))
