"""Property tests for the logic layer on the oracle generators.

Terms and substitutions come from :mod:`repro.oracle.gen`'s synthetic
generators (function terms up to depth, constants from the quoting-corner
pools, normalized substitutions), so these checks see shapes the
database-sampled property tests never produce.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.logic.subst import Substitution
from repro.logic.unify import match, unify, unify_all
from repro.logic.terms import Variable
from repro.oracle import (random_ground_term, random_substitution,
                          random_term)

_SETTINGS = dict(max_examples=50, deadline=None)
_seeds = st.integers(min_value=0, max_value=100_000)


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_substitution_application_is_idempotent(seed):
    rng = random.Random(seed)
    subst = random_substitution(rng)
    term = random_term(rng)
    once = subst.apply(term)
    assert subst.apply(once) == once


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_composition_agrees_with_sequential_application(seed):
    rng = random.Random(seed)
    first = random_substitution(rng)
    second = random_substitution(rng, variables=("A", "B", "C"),
                                 range_variables=("P", "Q"))
    term = random_term(rng)
    composed = first.compose(second)
    assert composed.apply(term) == second.apply(first.apply(term))


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_composition_is_associative_in_effect(seed):
    rng = random.Random(seed)
    s1 = random_substitution(rng)
    s2 = random_substitution(rng, variables=("A", "B", "C"),
                             range_variables=("P", "Q"))
    s3 = random_substitution(rng, variables=("P", "Q"),
                             range_variables=("K",))
    term = random_term(rng)
    left = s1.compose(s2).compose(s3)
    right = s1.compose(s2.compose(s3))
    assert left.apply(term) == right.apply(term)


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_unify_produces_a_real_unifier(seed):
    rng = random.Random(seed)
    left = random_term(rng)
    right = random_term(rng, variables=("A", "B", "C"))
    unifier = unify(left, right)
    if unifier is not None:
        assert unifier.apply(left) == unifier.apply(right)


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_unifier_is_most_general_against_ground_instances(seed):
    # If a ground instantiation makes both sides equal, unification must
    # succeed too (a ground unifier witnesses unifiability).
    rng = random.Random(seed)
    term = random_term(rng)
    grounding = Substitution({v: random_ground_term(rng)
                              for v in term.variables()})
    ground = grounding.apply(term)
    unifier = unify(term, ground)
    assert unifier is not None
    assert unifier.apply(term) == ground


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_unify_all_agrees_with_pairwise(seed):
    rng = random.Random(seed)
    pairs = [(random_term(rng, depth=1),
              random_term(rng, depth=1, variables=("A", "B")))
             for _ in range(3)]
    whole = unify_all(pairs)
    if whole is not None:
        for a, b in pairs:
            assert whole.apply(a) == whole.apply(b)


@settings(**_SETTINGS)
@given(seed=_seeds)
def test_match_is_one_way(seed):
    rng = random.Random(seed)
    pattern = random_term(rng)
    target = random_ground_term(rng)
    subst = match(pattern, target)
    if subst is not None:
        assert subst.apply(pattern) == target
        # Matching never binds target-side variables: the target was
        # ground, so every binding's domain is a pattern variable.
        assert set(subst) <= set(pattern.variables()) | set()


def test_bind_keeps_substitution_normalized():
    x, y = Variable("X"), Variable("Y")
    subst = Substitution({x: y})
    rebound = subst.bind(y, Variable("Z"))
    assert rebound.apply(x) == Variable("Z")
