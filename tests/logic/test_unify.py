"""Unit and property tests for unification and one-way matching."""

from hypothesis import given, strategies as st

from repro.logic.subst import Substitution
from repro.logic.terms import Constant, FunctionTerm, Variable, const, fn, var
from repro.logic.unify import match, unify, unify_all


class TestUnify:
    def test_identical_constants(self):
        assert unify(const("a"), const("a")) == Substitution()

    def test_conflicting_constants(self):
        assert unify(const("a"), const("b")) is None

    def test_variable_binds_left(self):
        result = unify(var("X"), const("a"))
        assert result.apply(var("X")) == const("a")

    def test_variable_binds_right(self):
        result = unify(const("a"), var("X"))
        assert result.apply(var("X")) == const("a")

    def test_variable_to_variable(self):
        result = unify(var("X"), var("Y"))
        assert result is not None
        assert result.apply(var("X")) == result.apply(var("Y"))

    def test_function_decomposition(self):
        result = unify(fn("f", var("X"), const("b")),
                       fn("f", const("a"), var("Y")))
        assert result.apply(var("X")) == const("a")
        assert result.apply(var("Y")) == const("b")

    def test_functor_mismatch(self):
        assert unify(fn("f", var("X")), fn("g", var("X"))) is None

    def test_arity_mismatch(self):
        assert unify(fn("f", var("X")), fn("f", var("X"), var("Y"))) is None

    def test_occurs_check(self):
        assert unify(var("X"), fn("f", var("X"))) is None

    def test_nested_occurs_check(self):
        assert unify(var("X"), fn("f", fn("g", var("X")))) is None

    def test_under_existing_substitution(self):
        base = Substitution({var("X"): const("a")})
        assert unify(var("X"), const("b"), base) is None
        extended = unify(var("X"), var("Y"), base)
        assert extended.apply(var("Y")) == const("a")

    def test_constant_vs_function(self):
        assert unify(const("a"), fn("f", const("a"))) is None

    def test_chained_variables(self):
        result = unify(fn("f", var("X"), var("X")),
                       fn("f", var("Y"), const("a")))
        assert result.apply(var("X")) == const("a")
        assert result.apply(var("Y")) == const("a")

    def test_mgu_is_most_general(self):
        # f(X, Y) and f(Y, Z) unify without grounding anything.
        result = unify(fn("f", var("X"), var("Y")),
                       fn("f", var("Y"), var("Z")))
        assert result is not None
        image = result.apply(fn("f", var("X"), var("Y")))
        assert not image.is_ground()


class TestUnifyAll:
    def test_simultaneous(self):
        result = unify_all([(var("X"), const("a")),
                            (var("Y"), var("X"))])
        assert result.apply(var("Y")) == const("a")

    def test_failure_propagates(self):
        assert unify_all([(var("X"), const("a")),
                          (var("X"), const("b"))]) is None


class TestMatch:
    def test_pattern_variable_binds(self):
        result = match(var("X"), const("a"))
        assert result.apply(var("X")) == const("a")

    def test_target_variable_is_rigid(self):
        # Matching never binds target-side variables.
        assert match(const("a"), var("T")) is None

    def test_pattern_var_binds_to_target_var(self):
        result = match(var("X"), var("T"))
        assert result.apply(var("X")) == var("T")

    def test_consistency_across_occurrences(self):
        pattern = fn("f", var("X"), var("X"))
        assert match(pattern, fn("f", const("a"), const("b"))) is None
        result = match(pattern, fn("f", const("a"), const("a")))
        assert result is not None

    def test_frozen_identity_binding(self):
        # Seeding X -> X freezes X: it cannot be re-bound.
        frozen = Substitution({var("X"): var("X")})
        assert match(var("X"), const("a"), frozen) is None
        assert match(var("X"), var("X"), frozen) == frozen

    def test_leaked_target_vars_are_rigid(self):
        # X binds to target var T; a second X occurrence must then be T.
        pattern = fn("f", var("X"), var("X"))
        target = fn("f", var("T"), var("U"))
        assert match(pattern, target) is None

    def test_function_pattern(self):
        result = match(fn("f", var("X")), fn("f", fn("g", const("a"))))
        assert result.apply(var("X")) == fn("g", const("a"))


_terms = st.recursive(
    st.sampled_from([const("a"), const("b"), var("X"), var("Y")]),
    lambda children: st.builds(
        lambda a, b: fn("f", a, b), children, children),
    max_leaves=6)


@given(_terms, _terms)
def test_unify_produces_a_unifier(left, right):
    result = unify(left, right)
    if result is not None:
        assert result.apply(left) == result.apply(right)


@given(_terms)
def test_unify_reflexive(term):
    result = unify(term, term)
    assert result is not None
    assert result.apply(term) == term


@given(_terms, _terms)
def test_unify_symmetric_on_success(left, right):
    forward = unify(left, right)
    backward = unify(right, left)
    assert (forward is None) == (backward is None)
