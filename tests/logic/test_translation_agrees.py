"""E13: the Datalog translation agrees with the direct TSL evaluator.

"TSL can be translated to Datalog with function symbols and limited
recursion over a fixed schema" (Section 2).  We evaluate the same queries
through both paths and require identical answers, on hand-written cases
and on randomized (database, query) pairs.
"""

import pytest

from repro.logic.translate import (copy_rules, encode_database,
                                   evaluate_via_datalog, translate_rule)
from repro.oem import build_database, identical, obj
from repro.tsl import evaluate, parse_query
from repro.workloads import (RandomOemConfig, RandomQueryConfig,
                             generate_random_database, sample_query)


@pytest.fixture
def nested_db():
    return build_database("db", [
        obj("person", [obj("gender", "female"), obj("name", "ann"),
                       obj("age", 31)], oid="p1"),
        obj("person", [obj("gender", "male"), obj("name", "bob")],
            oid="p2"),
        obj("person", [obj("gender", "female"),
                       obj("pubs", [obj("pub", [obj("title", "views")])])],
            oid="p3"),
    ])


CASES = [
    "<f(P) female {<f2(X) Y Z>}> :- "
    "<P person {<G gender female> <X Y Z>}>@db",
    "<f(P) copy V> :- <P person V>@db",
    "<f(P) rec {<g(P) has {<h(X) item W>}>}> :- "
    "<P person {<X name W>}>@db",
    "<f(P) flag yes> :- <P person {<X pubs {<U pub {<T title views>}>}>}>@db",
    "<f(X) const 1> :- <P person {<X age 31>}>@db",
]


@pytest.mark.parametrize("text", CASES)
def test_translation_matches_evaluator(nested_db, text):
    q = parse_query(text)
    direct = evaluate(q, nested_db)
    via = evaluate_via_datalog(q, nested_db)
    assert identical(direct, via)


def test_union_program_conflict_agrees(nested_db):
    from repro.errors import FusionConflictError
    from repro.tsl import evaluate_program
    rules = [
        parse_query("<f(P) person 1> :- <P person {<G gender female>}>@db"),
        parse_query("<f(P) person 2> :- <P person {<A age 31>}>@db"),
    ]
    # p1 satisfies both rules; fusing two different atomic values on the
    # same oid must raise in both evaluation paths.
    with pytest.raises(FusionConflictError):
        evaluate_program(rules, nested_db)
    with pytest.raises(FusionConflictError):
        evaluate_via_datalog(rules, nested_db)


def test_union_program_fusion_agrees(nested_db):
    from repro.tsl import evaluate_program
    rules = [
        parse_query("<f(P) rec {<g1(P) gender G>}> :- "
                    "<P person {<X gender G>}>@db"),
        parse_query("<f(P) rec {<g2(P) name N>}> :- "
                    "<P person {<X name N>}>@db"),
    ]
    direct = evaluate_program(rules, nested_db)
    via = evaluate_via_datalog(rules, nested_db)
    assert identical(direct, via)


def test_copy_rules_are_well_formed():
    assert len(copy_rules()) == 7


def test_encode_database_covers_reachable(nested_db):
    facts = encode_database(nested_db)
    predicates = {f.predicate for f in facts}
    assert {"root", "label", "atomic", "isset", "member",
            "value_of", "setvalue", "atomvalue"} <= predicates


def test_translate_rule_produces_body_predicate():
    q = parse_query("<f(P) r V> :- <P person V>@db")
    translation = translate_rule(q, index=3)
    assert translation.body_predicate == "q3_body"
    heads = {r.head.predicate for r in translation.rules}
    assert "ans_root" in heads and "ans_label" in heads


@pytest.mark.parametrize("db_seed", range(4))
@pytest.mark.parametrize("q_seed", range(3))
def test_random_agreement(db_seed, q_seed):
    db = generate_random_database(
        RandomOemConfig(roots=3, max_depth=3, max_fanout=3), seed=db_seed)
    q = sample_query(db, RandomQueryConfig(conditions=2, max_depth=3),
                     seed=q_seed)
    direct = evaluate(q, db)
    via = evaluate_via_datalog(q, db)
    assert identical(direct, via)
