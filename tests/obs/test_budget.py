"""Budget semantics: step budgets, deadlines, cooperative cancellation."""

import pytest

from repro.errors import ReproError
from repro.obs import Budget, BudgetExceededError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestStepBudget:
    def test_tick_raises_when_steps_exhausted(self):
        budget = Budget(max_steps=3)
        budget.tick()
        budget.tick()
        budget.tick()
        with pytest.raises(BudgetExceededError) as info:
            budget.tick()
        assert info.value.reason == "steps"
        assert info.value.steps == 4
        assert budget.exceeded
        assert budget.exceeded_reason == "steps"

    def test_bulk_tick(self):
        budget = Budget(max_steps=10)
        with pytest.raises(BudgetExceededError):
            budget.tick(11)

    def test_no_limits_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.tick()
        budget.check()
        assert not budget.exceeded


class TestDeadline:
    def test_deadline_raises_via_check(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        budget.check()
        clock.advance(0.2)  # 200ms
        with pytest.raises(BudgetExceededError) as info:
            budget.check()
        assert info.value.reason == "deadline"
        assert info.value.elapsed_ms == pytest.approx(200.0)

    def test_deadline_detected_within_clock_every_ticks(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        clock.advance(10)  # way past the deadline
        with pytest.raises(BudgetExceededError):
            for _ in range(Budget.CLOCK_EVERY):
                budget.tick()

    def test_tick_cheap_path_skips_clock(self):
        calls = []

        def clock():
            calls.append(None)
            return 0.0

        budget = Budget(deadline_ms=1000, clock=clock)
        baseline = len(calls)
        for _ in range(Budget.CLOCK_EVERY - 1):
            budget.tick()
        assert len(calls) == baseline  # no clock read before the batch edge

    def test_remaining_ms(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        clock.advance(0.04)
        assert budget.remaining_ms == pytest.approx(60.0)
        assert Budget(max_steps=5).remaining_ms is None


class TestErrorType:
    def test_is_a_repro_error(self):
        assert issubclass(BudgetExceededError, ReproError)

    def test_message_carries_diagnostics(self):
        budget = Budget(max_steps=1)
        budget.tick()
        with pytest.raises(BudgetExceededError, match="step budget"):
            budget.tick()
