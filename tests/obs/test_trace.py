"""Span nesting, ordering, attributes, and the no-op tracer."""

import pytest

from repro.obs import NULL_TRACER, Tracer, as_tracer


class FakeClock:
    """Deterministic clock: advances by a fixed amount per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestSpanTree:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass

        root, child, grandchild, sibling = tracer.spans
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id

    def test_spans_recorded_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]
        assert [s.span_id for s in tracer.spans] == [0, 1, 2]

    def test_walk_yields_depth_first_with_depths(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        walked = [(s.name, depth) for s, depth in tracer.walk()]
        assert walked == [("root", 0), ("child", 1),
                          ("grandchild", 2), ("sibling", 1)]

    def test_durations_are_nested_and_positive(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.duration > 0
        assert inner.duration > 0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_attrs_and_counters(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            span.set("detail", 42)
            span.add("items")
            span.add("items", 2)
        record = tracer.spans[0]
        assert record.attrs == {"kind": "test", "detail": 42}
        assert record.counters == {"items": 3}

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer, inner = tracer.spans
        assert inner.end is not None
        assert outer.end is not None
        assert inner.attrs["error"] == "ValueError"
        # After unwinding, new spans are roots again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_roots_and_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        (root,) = tracer.roots()
        assert root.name == "a"
        assert [c.name for c in tracer.children(root)] == ["b"]

    def test_double_exit_does_not_drain_stack(self):
        tracer = Tracer()
        root_span = tracer.span("root")
        child_span = tracer.span("child")
        child_span.__exit__(None, None, None)
        # Exiting again must not pop "root" off the stack.
        child_span.__exit__(None, None, None)
        with tracer.span("late"):
            pass
        assert tracer.spans[-1].parent_id == root_span.record.span_id
        root_span.__exit__(None, None, None)

    def test_out_of_order_exit_keeps_parent_attribution(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__exit__(None, None, None)  # unwinds inner too
        inner.__exit__(None, None, None)  # id already gone: must be a no-op
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None


class TestNullTracer:
    def test_span_is_shared_noop(self):
        first = NULL_TRACER.span("anything", key="value")
        second = NULL_TRACER.span("other")
        assert first is second  # no allocation on the disabled path

    def test_noop_span_accepts_api(self):
        with NULL_TRACER.span("x") as span:
            span.set("a", 1)
            span.add("b")
        assert NULL_TRACER.enabled is False
        assert list(NULL_TRACER.spans) == []

    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_tree_accessors_are_empty(self):
        assert NULL_TRACER.roots() == []
        assert list(NULL_TRACER.walk()) == []
        record = NULL_TRACER.span("x")
        assert NULL_TRACER.children(record) == []
