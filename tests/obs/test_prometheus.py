"""Prometheus text exposition: names, labels, and the golden file."""

from pathlib import Path

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.export import prometheus_name

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def golden_registry() -> MetricsRegistry:
    """A deterministic registry covering every exposition feature."""
    registry = MetricsRegistry()
    registry.increment("cache.hits", 3)
    registry.increment("calls", 2, labels={"phase": "chase"})
    registry.increment("calls", labels={"phase": "compose"})
    registry.set_gauge("queue.depth", 4)
    registry.set_gauge("shard.entries", 11, labels={"shard": "0"})
    registry.set_gauge("shard.entries", 7, labels={"shard": "1"})
    histogram = registry.histogram("phase.seconds",
                                   labels={"phase": "rewrite"},
                                   buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05, 2.0):
        histogram.observe(value)
    registry.observe("plain", 0.5)
    return registry


class TestNames:
    def test_namespace_prefix_and_sanitization(self):
        assert prometheus_name("phase.seconds") == "repro_phase_seconds"
        assert prometheus_name("cache.q-1.hits") == "repro_cache_q_1_hits"

    def test_counters_get_total_suffix(self):
        registry = MetricsRegistry()
        registry.increment("cache.hits")
        assert "repro_cache_hits_total 1" in render_prometheus(registry)

    def test_gauges_render_bare_with_type_line(self):
        registry = MetricsRegistry()
        registry.set_gauge("pool.queue.depth", 3)
        rendered = render_prometheus(registry)
        assert "# TYPE repro_pool_queue_depth gauge" in rendered
        assert "repro_pool_queue_depth 3" in rendered


class TestLabelsAndEscaping:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.increment("c", labels={"view": 'a"b\\c\nd'})
        line = [l for l in render_prometheus(registry).splitlines()
                if l.startswith("repro_c_total{")][0]
        assert line == 'repro_c_total{view="a\\"b\\\\c\\nd"} 1'

    def test_histogram_le_label_appended_after_instrument_labels(self):
        rendered = render_prometheus(golden_registry())
        assert 'repro_phase_seconds_bucket{phase="rewrite",le="0.001"} 1' \
            in rendered
        assert 'repro_phase_seconds_bucket{phase="rewrite",le="+Inf"} 4' \
            in rendered


class TestGoldenFile:
    def test_exposition_matches_golden_file(self):
        # Stable ordering is part of the contract: two runs over the
        # same instruments must render byte-identical exposition.
        assert render_prometheus(golden_registry()) == GOLDEN.read_text()

    def test_rendering_is_deterministic(self):
        assert render_prometheus(golden_registry()) == \
            render_prometheus(golden_registry())

    def test_ends_with_single_trailing_newline(self):
        rendered = render_prometheus(golden_registry())
        assert rendered.endswith("\n") and not rendered.endswith("\n\n")
