"""Flight recorder: ring semantics, tail capture, and thread safety."""

import json
import threading

import pytest

from repro.obs import FlightRecorder, RequestRecord
from repro.obs.recorder import RECORDER_SCHEMA_VERSION, aggregate_phases
from repro.obs.trace import Tracer


def make_record(request_id: str, *, status: int = 200,
                seconds: float = 0.001, slow: bool = False,
                error: bool = False) -> RequestRecord:
    return RequestRecord(
        request_id=request_id, trace_id="t" * 32, method="POST",
        path="/rewrite", endpoint="POST /rewrite", status=status,
        ts=1000.0, seconds=seconds, slow=slow, error=error)


class TestRing:
    def test_capacity_bound_holds(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record(make_record(f"r{index}"))
        snapshot = recorder.snapshot()
        assert len(snapshot) == 3
        stats = recorder.stats()
        assert stats["recorded"] == 10
        assert stats["dropped"] == 7
        assert stats["size"] == 3

    def test_snapshot_is_newest_first(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            recorder.record(make_record(f"r{index}"))
        assert [r.request_id for r in recorder.snapshot()] == \
            ["r4", "r3", "r2", "r1", "r0"]

    def test_get_by_id_and_miss(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(make_record("abc"))
        assert recorder.get("abc").request_id == "abc"
        assert recorder.get("nope") is None

    def test_evicted_record_is_gone(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(3):
            recorder.record(make_record(f"r{index}"))
        assert recorder.get("r0") is None
        assert recorder.get("r2") is not None

    def test_slow_requests_filters_tail(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(make_record("fast"))
        recorder.record(make_record("slow", slow=True))
        recorder.record(make_record("bad", status=500, error=True))
        assert [r.request_id for r in recorder.slow_requests()] == \
            ["bad", "slow"]

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(capacity=4, enabled=False)
        recorder.record(make_record("r"))
        assert recorder.snapshot() == []
        assert recorder.stats()["enabled"] is False

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_is_slow_uses_threshold(self):
        recorder = FlightRecorder(slow_ms=100.0)
        assert recorder.is_slow(0.25)
        assert not recorder.is_slow(0.05)

    def test_clear_resets_ring_and_counters(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(make_record("r"))
        recorder.clear()
        assert recorder.snapshot() == []
        assert recorder.stats()["recorded"] == 0


class TestRecordJson:
    def test_summary_omits_detail_fields(self):
        record = make_record("r1")
        payload = record.to_json()
        assert "trace" not in payload and "explain" not in payload
        assert payload["detailed"] is False
        json.dumps(payload)  # must be serializable

    def test_detail_includes_trace_and_explain(self):
        record = make_record("r1", slow=True)
        record.trace = [{"id": 0, "name": "request"}]
        record.explain = {"schema_version": 1, "events": []}
        payload = record.to_json(detail=True)
        assert payload["detailed"] is True
        assert payload["trace"] == [{"id": 0, "name": "request"}]
        assert payload["explain"]["schema_version"] == 1

    def test_schema_version_is_stable(self):
        assert RECORDER_SCHEMA_VERSION == 1


class TestAggregatePhases:
    def test_sums_durations_by_span_name(self):
        tracer = Tracer()
        with tracer.span("request"):
            with tracer.span("rewrite"):
                with tracer.span("chase"):
                    pass
                with tracer.span("chase"):
                    pass
        phases = aggregate_phases(tracer.spans)
        assert set(phases) == {"request", "rewrite", "chase"}
        assert phases["chase"] >= 0.0

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        tracer.span("open")   # never exited
        assert aggregate_phases(tracer.spans) == {}


class TestConcurrency:
    def test_hammer_from_8_threads(self):
        # No lost or duplicated records, the capacity bound holds, and
        # snapshots taken *while* writers run are always consistent.
        capacity = 64
        recorder = FlightRecorder(capacity=capacity)
        threads, per_thread = 8, 500
        barrier = threading.Barrier(threads + 1)
        snapshot_errors: list[str] = []

        def writer(index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                recorder.record(make_record(f"w{index}-{i}"))

        def snapshotter() -> None:
            barrier.wait()
            for _ in range(200):
                snap = recorder.snapshot()
                if len(snap) > capacity:
                    snapshot_errors.append(
                        f"snapshot over capacity: {len(snap)}")
                ids = [r.request_id for r in snap]
                if len(ids) != len(set(ids)):
                    snapshot_errors.append("duplicate ids in snapshot")
                for record in snap:
                    if not isinstance(record, RequestRecord):
                        snapshot_errors.append("torn record")

        pool = [threading.Thread(target=writer, args=(i,))
                for i in range(threads)] + \
               [threading.Thread(target=snapshotter)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert snapshot_errors == []
        stats = recorder.stats()
        assert stats["recorded"] == threads * per_thread
        assert stats["size"] == capacity
        assert stats["dropped"] == threads * per_thread - capacity
        final = recorder.snapshot()
        assert len(final) == capacity
        ids = [r.request_id for r in final]
        assert len(ids) == len(set(ids)), "duplicated records"
        # Each writer's surviving records are its *last* ones and appear
        # in per-writer order (the ring never reorders or resurrects).
        for index in range(threads):
            mine = [int(request_id.split("-")[1]) for request_id in ids
                    if request_id.startswith(f"w{index}-")]
            assert mine == sorted(mine, reverse=True)
            if mine:
                assert mine[0] == per_thread - 1
