"""Metrics registry: counters, histograms, snapshot/reset, threading."""

import json
import threading

from repro.obs import METRICS, MetricsRegistry


class TestCounters:
    def test_increment_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_counter_handle_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestHistograms:
    def test_observe_summarizes(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.observe("latency", value)
        summary = registry.snapshot()["histograms"]["latency"]
        assert summary["count"] == 3
        assert summary["sum"] == 15.0
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["mean"] == 5.0

    def test_empty_histogram_mean_is_none(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        assert registry.snapshot()["histograms"]["empty"]["mean"] is None


class TestSnapshotReset:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 1.5)
        json.dumps(registry.snapshot())  # must not raise

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.increment("a")
        snap = registry.snapshot()
        registry.increment("a")
        assert snap["counters"]["a"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 1.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_process_wide_default_exists(self):
        assert isinstance(METRICS, MetricsRegistry)


class TestThreading:
    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.increment("shared")
                registry.observe("values", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["shared"] == 4000
        assert snap["histograms"]["values"]["count"] == 4000
