"""Metrics registry: counters, histograms, snapshot/reset, threading."""

import json
import threading

import pytest

from repro.obs import METRICS, MetricsRegistry


class TestCounters:
    def test_increment_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_counter_handle_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauges:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 5)
        registry.set_gauge("depth", 2)
        assert registry.snapshot()["gauges"]["depth"] == 2

    def test_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("in_flight")
        gauge.inc()
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 3

    def test_gauge_handle_is_stable(self):
        registry = MetricsRegistry()
        assert registry.gauge("g") is registry.gauge("g")

    def test_labeled_gauges_are_separate(self):
        registry = MetricsRegistry()
        registry.set_gauge("occupancy", 7, labels={"shard": "0"})
        registry.set_gauge("occupancy", 9, labels={"shard": "1"})
        gauges = registry.snapshot()["gauges"]
        assert gauges["occupancy{shard=0}"] == 7
        assert gauges["occupancy{shard=1}"] == 9

    def test_concurrent_incs_do_not_lose_updates(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")

        def work():
            for _ in range(1000):
                gauge.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 4000


class TestHistograms:
    def test_observe_summarizes(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.observe("latency", value)
        summary = registry.snapshot()["histograms"]["latency"]
        assert summary["count"] == 3
        assert summary["sum"] == 15.0
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["mean"] == 5.0

    def test_empty_histogram_mean_is_none(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        assert registry.snapshot()["histograms"]["empty"]["mean"] is None


class TestSnapshotReset:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 1.5)
        json.dumps(registry.snapshot())  # must not raise

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.increment("a")
        snap = registry.snapshot()
        registry.increment("a")
        assert snap["counters"]["a"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 1.0)
        registry.set_gauge("c", 3)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_process_wide_default_exists(self):
        assert isinstance(METRICS, MetricsRegistry)


class TestThreading:
    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.increment("shared")
                registry.observe("values", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["shared"] == 4000
        assert snap["histograms"]["values"]["count"] == 4000

    def test_concurrent_observes_never_lose_counts(self):
        # The serving pool records request latency from many worker
        # threads into one labeled histogram; every observe() must land
        # in the count, the sum, and exactly one bucket.
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", buckets=(0.25, 0.5, 0.75), labels={"e": "x"})
        threads, per_thread = 8, 2500

        def work(index):
            barrier.wait()
            for i in range(per_thread):
                histogram.observe(((index + i) % 4) * 0.25)

        barrier = threading.Barrier(threads)
        pool = [threading.Thread(target=work, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        total = threads * per_thread
        assert histogram.count == total
        # Every thread observed the same 0/0.25/0.5/0.75 cycle, so the
        # sum and the per-bucket split are exact, not approximate.
        assert histogram.total == pytest.approx(
            total / 4 * (0.0 + 0.25 + 0.5 + 0.75))
        cumulative = histogram.cumulative()
        assert cumulative[-1] == (float("inf"), total)
        # Inclusive `le` boundaries: 0.0 and 0.25 land in the first
        # bucket, 0.5 and 0.75 add a quarter each.
        assert [count for _le, count in cumulative] == [
            total // 2, 3 * total // 4, total, total]


class TestBuckets:
    def test_exact_bucket_counts(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
            histogram.observe(value)
        # Boundaries are inclusive (Prometheus `le` semantics): 1.0
        # lands in the first bucket, 2.0 in the second.
        assert histogram.cumulative() == [
            (1.0, 2), (2.0, 4), (4.0, 5), (float("inf"), 6)]

    def test_snapshot_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(1.0, 2.0)).observe(1.5)
        summary = registry.snapshot()["histograms"]["t"]
        assert summary["buckets"] == [[1.0, 0], [2.0, 1], ["+Inf", 1]]

    def test_custom_buckets_only_apply_at_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("t", buckets=(1.0,))
        again = registry.histogram("t", buckets=(5.0, 6.0))
        assert again is first
        assert first.buckets == (1.0,)

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        try:
            registry.histogram("bad", buckets=(2.0, 1.0))
        except ValueError as exc:
            assert "increasing" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestQuantiles:
    def test_interpolated_quantiles_are_deterministic(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(1.0, 2.0, 4.0))
        # 3 observations <= 1.0, 5 in (2.0, 4.0], 2 overflow.
        for value in (0.2, 0.4, 0.6):
            histogram.observe(value)
        for value in (2.2, 2.4, 2.6, 2.8, 3.0):
            histogram.observe(value)
        for value in (8.0, 9.0):
            histogram.observe(value)
        # rank 5 falls in (2, 4] after a cumulative 3: 2 + 2 * (2/5).
        assert histogram.quantile(0.5) == 2.8
        # Overflow bucket: clamped to the observed maximum.
        assert histogram.quantile(0.99) == 9.0

    def test_quantile_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(10.0,))
        histogram.observe(4.0)
        histogram.observe(4.0)
        # Interpolation alone would say 5.0 (half of the 0-10 bucket);
        # clamping to max keeps the estimate inside the data.
        assert histogram.quantile(0.5) == 4.0

    def test_empty_histogram_quantiles_are_none(self):
        registry = MetricsRegistry()
        summary_keys = registry.histogram("t")
        assert summary_keys.quantile(0.5) is None
        snap = registry.snapshot()["histograms"]["t"]
        assert snap["p50"] is None and snap["p99"] is None

    def test_snapshot_reports_p50_p90_p99(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("t", value / 100.0)
        snap = registry.snapshot()["histograms"]["t"]
        assert snap["p50"] is not None
        assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]


class TestLabels:
    def test_labeled_instruments_are_separate(self):
        registry = MetricsRegistry()
        registry.increment("calls", labels={"phase": "chase"})
        registry.increment("calls", 2, labels={"phase": "compose"})
        counters = registry.snapshot()["counters"]
        assert counters["calls{phase=chase}"] == 1
        assert counters["calls{phase=compose}"] == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.increment("c", labels={"a": 1, "b": 2})
        registry.increment("c", labels={"b": 2, "a": 1})
        assert registry.snapshot()["counters"]["c{a=1,b=2}"] == 2

    def test_labeled_histogram_snapshot_key(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.5, labels={"view": "V1"})
        assert "lat{view=V1}" in registry.snapshot()["histograms"]


class TestDirectHandleConcurrency:
    def test_direct_handles_are_as_safe_as_registry_calls(self):
        # The locking-asymmetry regression test: a handle obtained once
        # and hammered directly must not lose updates racing against
        # registry-mediated calls to the same instruments.
        registry = MetricsRegistry()
        counter = registry.counter("shared")
        histogram = registry.histogram("values")

        def direct():
            for _ in range(1000):
                counter.inc()
                histogram.observe(1.0)

        def mediated():
            for _ in range(1000):
                registry.increment("shared")
                registry.observe("values", 1.0)

        threads = [threading.Thread(target=direct) for _ in range(2)] + \
                  [threading.Thread(target=mediated) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["shared"] == 4000
        assert snap["histograms"]["values"]["count"] == 4000
        assert snap["histograms"]["values"]["buckets"][-1][1] == 4000
