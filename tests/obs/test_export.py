"""Exporter round trips: jsonl, Chrome trace-event schema, text tree."""

import json

import pytest

from repro.obs import (NULL_TRACER, Tracer, from_jsonl, to_chrome, to_jsonl,
                       to_text, write_trace)


@pytest.fixture
def tracer():
    tracer = Tracer()
    with tracer.span("rewrite", query="Q") as root:
        root.add("candidates_tested", 2)
        with tracer.span("chase") as chase_span:
            chase_span.add("iterations", 3)
        with tracer.span("compose"):
            pass
    return tracer


class TestJsonl:
    def test_one_json_object_per_line(self, tracer):
        lines = to_jsonl(tracer).splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_round_trip_preserves_tree_and_data(self, tracer):
        records = from_jsonl(to_jsonl(tracer))
        assert [r.name for r in records] == ["rewrite", "chase", "compose"]
        root, chase, compose = records
        assert root.parent_id is None
        assert chase.parent_id == root.span_id
        assert compose.parent_id == root.span_id
        assert root.attrs == {"query": "Q"}
        assert root.counters == {"candidates_tested": 2}
        assert chase.counters == {"iterations": 3}
        assert chase.duration == pytest.approx(
            tracer.spans[1].duration, abs=1e-6)

    def test_round_trip_skips_blank_lines(self, tracer):
        text = to_jsonl(tracer) + "\n\n"
        assert len(from_jsonl(text)) == 3

    def test_open_span_round_trips_as_open(self):
        tracer = Tracer()
        tracer.span("never-closed")
        (record,) = from_jsonl(to_jsonl(tracer))
        assert record.end is None
        assert record.duration == 0.0

    def test_legacy_lines_without_end_ms_still_parse(self, tracer):
        lines = []
        for line in to_jsonl(tracer).splitlines():
            data = json.loads(line)
            del data["end_ms"]
            lines.append(json.dumps(data))
        records = from_jsonl("\n".join(lines))
        for record, span in zip(records, tracer.spans):
            assert record.end is not None
            assert record.duration == pytest.approx(span.duration, abs=1e-6)


class TestChrome:
    def test_schema(self, tracer):
        document = json.loads(to_chrome(tracer))
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
            assert event["dur"] >= 0
        by_name = {event["name"]: event for event in events}
        assert by_name["rewrite"]["args"]["query"] == "Q"
        assert by_name["chase"]["args"]["iterations"] == 3

    def test_timestamps_are_microseconds(self, tracer):
        document = json.loads(to_chrome(tracer))
        span = tracer.spans[0]
        event = document["traceEvents"][0]
        assert event["ts"] == pytest.approx(span.start * 1e6)
        assert event["dur"] == pytest.approx(span.duration * 1e6)


class TestText:
    def test_tree_indentation_and_durations(self, tracer):
        lines = to_text(tracer).splitlines()
        assert lines[0].startswith("rewrite ")
        assert lines[1].startswith("  chase ")
        assert lines[2].startswith("  compose ")
        assert "ms" in lines[0]
        assert "iterations=3" in lines[1]
        assert "query=Q" in lines[0]


class TestWriteTrace:
    @pytest.mark.parametrize("trace_format", ["jsonl", "chrome", "text"])
    def test_writes_each_format(self, tracer, tmp_path, trace_format):
        path = tmp_path / f"trace.{trace_format}"
        write_trace(tracer, str(path), trace_format)
        content = path.read_text()
        assert content.strip()
        if trace_format == "jsonl":
            assert len(from_jsonl(content)) == 3
        elif trace_format == "chrome":
            assert "traceEvents" in json.loads(content)

    def test_unknown_format_rejected(self, tracer, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(tracer, str(tmp_path / "x"), "xml")

    @pytest.mark.parametrize("trace_format", ["jsonl", "chrome", "text"])
    def test_null_tracer_exports_empty(self, tmp_path, trace_format):
        path = tmp_path / f"null.{trace_format}"
        write_trace(NULL_TRACER, str(path), trace_format)
        content = path.read_text()
        if trace_format == "jsonl":
            assert from_jsonl(content) == []
        elif trace_format == "chrome":
            assert json.loads(content)["traceEvents"] == []
        else:
            assert content.strip() == ""
