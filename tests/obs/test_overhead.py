"""The disabled path must be (near) zero overhead.

The rewriter, benchmarks, and fuzz harness all run with tracing off by
default; these guards pin the properties that make that free --
allocation-free no-op spans and a cheap ``budget is None`` guard -- plus
a generous wall-clock ceiling so a pathological regression (e.g. the
no-op span starting to allocate or read the clock) fails loudly.
"""

import time

from repro.obs import NULL_TRACER
from repro.rewriting import rewrite
from repro.workloads import query_q3, view_v1


def test_null_span_is_allocation_free():
    spans = {NULL_TRACER.span("a"), NULL_TRACER.span("b", attr=1)}
    assert len(spans) == 1  # every call returns the same shared object


def test_null_tracer_records_nothing():
    with NULL_TRACER.span("phase") as span:
        span.add("counter", 10)
        span.set("attr", "x")
    assert list(NULL_TRACER.spans) == []


def test_noop_span_overhead_is_bounded():
    """100k no-op spans must cost well under a second (they are ~100ns)."""
    iterations = 100_000
    started = time.perf_counter()
    for _ in range(iterations):
        with NULL_TRACER.span("x"):
            pass
    elapsed = time.perf_counter() - started
    assert elapsed < 1.0, (
        f"no-op tracer overhead regressed: {iterations} spans took "
        f"{elapsed:.3f}s")


def test_rewrite_defaults_to_disabled_observability():
    """The benchmark path: rewrite() without obs args matches old behavior.

    Runs the same workload as ``bench_rewriter`` and checks the result is
    intact; the absence of tracer/budget objects means the only new cost
    on this path is a handful of ``is None`` checks per candidate.
    """
    result = rewrite(query_q3(), {"V1": view_v1()})
    assert len(result.rewritings) == 1
    assert result.truncated is False
    assert result.stats.stop_reason is None
