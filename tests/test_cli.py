"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.oem import dumps
from repro.workloads import figure3_database


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "q.tsl"
    path.write_text(
        '<hit(P) title T> :- <P pub {<B booktitle "SIGMOD">}>@db AND '
        '<P pub {<X title T>}>@db')
    return str(path)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(dumps(figure3_database()))
    return str(path)


@pytest.fixture
def view_file(tmp_path):
    path = tmp_path / "v.tsl"
    path.write_text(
        '<v(P) pub {<c(P,L,W) L W>}> :- '
        '<P pub {<B booktitle "SIGMOD">}>@db AND <P pub {<X L W>}>@db')
    return str(path)


class TestValidate:
    def test_valid_query(self, query_file, capsys):
        assert main(["validate", query_file]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_query(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsl"
        bad.write_text("<f(P) x W> :- <P a V>@db")  # unsafe
        assert main(["validate", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent.tsl"]) == 2


class TestEvaluate:
    def test_json_output(self, query_file, db_file, capsys):
        assert main(["evaluate", query_file, "--db", db_file]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["name"] == "answer"
        assert "1 root object(s)" in captured.err

    def test_dot_output(self, query_file, db_file, capsys):
        assert main(["evaluate", query_file, "--db", db_file,
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "answer"')
        assert "Constraint Views" in out


class TestRewrite:
    def test_rewriting_found(self, query_file, view_file, capsys):
        assert main(["rewrite", query_file,
                     "--view", f"V={view_file}"]) == 0
        out = capsys.readouterr().out
        assert "@V" in out
        assert "% equivalent" in out

    def test_no_rewriting(self, tmp_path, view_file, capsys):
        query = tmp_path / "q2.tsl"
        query.write_text("<f(P) x V> :- <P nothing V>@db")
        assert main(["rewrite", str(query),
                     "--view", f"V={view_file}"]) == 1
        assert "no rewriting" in capsys.readouterr().err

    def test_contained_mode(self, tmp_path, view_file, capsys):
        query = tmp_path / "q3.tsl"
        query.write_text("<f(P) title T> :- <P pub {<X title T>}>@db")
        assert main(["rewrite", str(query), "--view", f"V={view_file}",
                     "--contained"]) == 0
        assert "% contained" in capsys.readouterr().out

    def test_bad_view_spec(self, query_file, capsys):
        assert main(["rewrite", query_file, "--view", "noequals"]) == 2

    def test_with_dtd(self, tmp_path, capsys):
        from repro.rewriting.constraints import PAPER_DTD
        query = tmp_path / "q7.tsl"
        query.write_text(
            "<f(P) stanford yes> :- "
            "<P p {<X name {<Z last stanford>}>}>@db")
        view = tmp_path / "v1.tsl"
        view.write_text(
            "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- "
            "<P' p {<X' Y' Z'>}>@db")
        dtd = tmp_path / "people.dtd"
        dtd.write_text(PAPER_DTD)
        assert main(["rewrite", str(query), "--view", f"V1={view}"]) == 1
        assert main(["rewrite", str(query), "--view", f"V1={view}",
                     "--dtd", str(dtd)]) == 0


class TestRewriteObservability:
    def test_json_format(self, query_file, view_file, capsys):
        assert main(["rewrite", query_file, "--view", f"V={view_file}",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rewritings"]
        assert data["rewritings"][0]["flavor"] == "equivalent"
        assert data["truncated"] is False
        assert data["stop_reason"] is None
        assert data["stats"]["candidates_tested"] >= 1

    def test_trace_written_and_parseable(self, query_file, view_file,
                                         tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        assert main(["rewrite", query_file, "--view", f"V={view_file}",
                     "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        names = {record["name"] for record in records}
        assert {"rewrite", "chase", "compose", "equivalence"} <= names
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["rewrite"]
        assert f"# trace: {len(records)} span(s)" in capsys.readouterr().err

    @pytest.mark.parametrize("trace_format", ["chrome", "text"])
    def test_other_trace_formats(self, query_file, view_file, tmp_path,
                                 trace_format):
        trace = tmp_path / "out.trace"
        assert main(["rewrite", query_file, "--view", f"V={view_file}",
                     "--trace", str(trace),
                     "--trace-format", trace_format]) == 0
        content = trace.read_text()
        if trace_format == "chrome":
            assert json.loads(content)["traceEvents"]
        else:
            assert content.startswith("rewrite ")

    def test_budget_truncation_warns_and_exits_cleanly(
            self, tmp_path, capsys):
        from repro.workloads.querygen import star_query, star_view
        query = tmp_path / "star.tsl"
        query.write_text(str(star_query(2)))
        view = tmp_path / "starv.tsl"
        view.write_text(str(star_view(2)))
        code = main(["rewrite", str(query), "--view", f"V={view}",
                     "--max-steps", "700", "--format", "json"])
        captured = capsys.readouterr()
        assert "search truncated (steps)" in captured.err
        data = json.loads(captured.out)
        assert data["truncated"] is True
        assert data["stop_reason"] == "steps"
        assert code in (0, 1)  # clean exit either way

    def test_budget_ms_on_adversarial_workload(self, tmp_path, capsys):
        # The ISSUE acceptance scenario: a deadline stops a search that
        # would otherwise run for minutes, exiting cleanly.
        from repro.workloads.querygen import star_query, star_view
        query = tmp_path / "star3.tsl"
        query.write_text(str(star_query(3)))
        view = tmp_path / "star3v.tsl"
        view.write_text(str(star_view(3)))
        trace = tmp_path / "out.jsonl"
        code = main(["rewrite", str(query), "--view", f"V={view}",
                     "--budget-ms", "50", "--trace", str(trace),
                     "--format", "json"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        data = json.loads(captured.out)
        assert data["truncated"] is True
        assert data["stop_reason"] == "deadline"
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert {"rewrite", "enumerate_mappings"} <= {
            r["name"] for r in records}
        assert all(r["duration_ms"] >= 0 for r in records)

    def test_max_candidates_truncation_warning(self, tmp_path, capsys):
        query = tmp_path / "q.tsl"
        query.write_text('<f(P) result V> :- <P c V>@db')
        v1 = tmp_path / "v1.tsl"
        v1.write_text('<view1(P) row V> :- <P c V>@db')
        v2 = tmp_path / "v2.tsl"
        v2.write_text('<view2(P) row V> :- <P c V>@db')
        assert main(["rewrite", str(query), "--view", f"V1={v1}",
                     "--view", f"V2={v2}", "--max-candidates", "1"]) == 0
        err = capsys.readouterr().err
        assert "search truncated (max_candidates)" in err

    def test_contained_with_trace(self, tmp_path, view_file, capsys):
        query = tmp_path / "q3.tsl"
        query.write_text("<f(P) title T> :- <P pub {<X title T>}>@db")
        trace = tmp_path / "contained.jsonl"
        assert main(["rewrite", str(query), "--view", f"V={view_file}",
                     "--contained", "--trace", str(trace)]) == 0
        names = {json.loads(line)["name"]
                 for line in trace.read_text().splitlines()}
        assert "contained_rewrite" in names


class TestImportXml:
    def test_stdout(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("<r><a>1</a></r>")
        assert main(["import-xml", str(doc)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "db"

    def test_output_file_and_dtd_notice(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("""<!DOCTYPE r [
            <!ELEMENT r (a)> <!ELEMENT a CDATA>
        ]><r><a>1</a></r>""")
        out = tmp_path / "db.json"
        assert main(["import-xml", str(doc), "-o", str(out),
                     "--name", "src1"]) == 0
        data = json.loads(out.read_text())
        assert data["name"] == "src1"
        assert "internal DTD found" in capsys.readouterr().err


class TestFuzz:
    def test_green_campaign_text(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "OK: 8 iterations" in out

    def test_green_campaign_json(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "4",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["iterations"] == 4
        assert set(data["checks"]) == {"containment", "index", "memo",
                                       "metamorphic", "persist",
                                       "semantic", "signature"}

    def test_oracle_and_profile_selection(self, capsys):
        assert main(["fuzz", "--seed", "1", "--iterations", "3",
                     "--oracle", "semantic",
                     "--profile", "conjunctive", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["checks"]) == {"semantic"}

    def test_unknown_profile_rejected(self, capsys):
        assert main(["fuzz", "--profile", "nonsense"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_replay_corpus_case(self, capsys):
        import glob
        import os
        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        path = sorted(glob.glob(os.path.join(corpus, "*.json")))[0]
        assert main(["fuzz", "--replay", path, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_failures_exit_one_and_save_corpus(self, tmp_path, capsys,
                                               monkeypatch):
        import importlib
        chase_mod = importlib.import_module("repro.rewriting.chase")
        monkeypatch.setattr(
            chase_mod, "_drop_subsumed_empty_paths",
            lambda paths: paths[:-1] if len(paths) > 1 else paths)
        assert main(["fuzz", "--seed", "0", "--iterations", "6",
                     "--corpus", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAILURE" in out
        assert "saved:" in out
        assert list(tmp_path.glob("*.json"))


@pytest.fixture
def paper_files(tmp_path):
    """Q7, V1, and the DTD of the paper's running example."""
    from repro.rewriting.constraints import PAPER_DTD
    query = tmp_path / "q7.tsl"
    query.write_text("<f(P) stanford yes> :- "
                     "<P p {<X name {<Z last stanford>}>}>@db")
    view = tmp_path / "v1.tsl"
    view.write_text("<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- "
                    "<P' p {<X' Y' Z'>}>@db")
    dtd = tmp_path / "people.dtd"
    dtd.write_text(PAPER_DTD)
    return str(query), str(view), str(dtd)


class TestExplainCmd:
    def test_text_rendering_and_exit_codes(self, paper_files, capsys):
        query, view, dtd = paper_files
        assert main(["explain", query, "--view", f"V1={view}"]) == 1
        out = capsys.readouterr().out
        assert "failed-equivalence" in out
        assert "step 1A -- containment mappings:" in out
        assert main(["explain", query, "--view", f"V1={view}",
                     "--dtd", dtd]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_json_is_machine_readable(self, paper_files, capsys):
        query, view, dtd = paper_files
        assert main(["explain", query, "--view", f"V1={view}",
                     "--dtd", dtd, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == 1
        assert all(c["verdict"] for c in data["candidates"])
        assert data["rewritings"]

    def test_memoized_json_identical_to_cold(self, paper_files, capsys):
        # Same process, two invocations: the second run rebuilds the
        # session, so this checks determinism of the log itself; the
        # in-session memo replay is covered in test_explain.py.
        query, view, dtd = paper_files
        main(["explain", query, "--view", f"V1={view}", "--dtd", dtd,
              "--format", "json"])
        first = capsys.readouterr().out
        main(["explain", query, "--view", f"V1={view}", "--dtd", dtd,
              "--format", "json"])
        assert capsys.readouterr().out == first

    def test_trace_flag(self, paper_files, tmp_path, capsys):
        query, view, dtd = paper_files
        trace = tmp_path / "explain.jsonl"
        assert main(["explain", query, "--view", f"V1={view}",
                     "--dtd", dtd, "--trace", str(trace)]) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert {"rewrite", "equivalence"} <= {r["name"] for r in records}


class TestMetricsCmd:
    def test_default_workload_prometheus(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_phase_seconds histogram" in out
        for phase in ("rewrite", "chase", "compose", "equivalence",
                      "memo_lookup"):
            assert f'phase="{phase}"' in out
        assert 'le="+Inf"' in out

    def test_json_snapshot(self, capsys):
        assert main(["metrics", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        hist = data["histograms"]["phase.seconds{phase=rewrite}"]
        assert hist["count"] > 0
        assert hist["p50"] is not None

    def test_explicit_query_requires_view(self, paper_files, capsys):
        query, view, _ = paper_files
        assert main(["metrics", query]) == 2
        assert "--view" in capsys.readouterr().err
        assert main(["metrics", query, "--view", f"V1={view}"]) == 0


@pytest.fixture(scope="module")
def live_server():
    """One live server warmed with a couple of requests, for the remote
    client commands (`metrics --url`, `top`)."""
    from repro.rewriting.constraints import PAPER_DTD
    from repro.server import ServerConfig, running_server
    from repro.tsl import print_query
    from repro.workloads import query_q3, view_v1

    body = {"query": print_query(query_q3()),
            "views": {"V1": print_query(view_v1())},
            "dtd": PAPER_DTD}
    with running_server(ServerConfig(port=0, workers=2)) as thread:
        assert thread.post("/rewrite", body)[0] == 200
        assert thread.post("/rewrite", body)[0] == 200
        yield f"http://127.0.0.1:{thread.port}"


class TestMetricsUrl:
    def test_scrapes_live_exposition(self, live_server, capsys):
        assert main(["metrics", "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert "repro_server_requests_total" in out
        assert "# TYPE repro_server_seconds histogram" in out
        assert "gauge" in out

    def test_full_metrics_url_accepted(self, live_server, capsys):
        assert main(["metrics", "--url", f"{live_server}/metrics"]) == 0
        assert "repro_server_requests_total" in capsys.readouterr().out

    def test_json_parses_scrape(self, live_server, capsys):
        assert main(["metrics", "--url", live_server,
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert any(key.startswith("repro_server_requests_total")
                   for key in data["counters"])
        assert any(key.startswith("repro_server_seconds")
                   for key in data["histograms"])
        assert "repro_server_sessions_live" in data["gauges"]

    def test_url_rejects_workload_args(self, live_server, capsys):
        assert main(["metrics", "--url", live_server, "ignored.tsl"]) == 2
        assert "no query" in capsys.readouterr().err

    def test_unreachable_server_reports_error(self, capsys):
        assert main(["metrics", "--url", "http://127.0.0.1:9"]) == 2
        assert "error" in capsys.readouterr().err


class TestTopCmd:
    def test_once_renders_dashboard(self, live_server, capsys):
        assert main(["top", "--url", live_server, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "POST /rewrite" in out
        assert "p50" in out and "p99" in out
        assert "cache table" in out
        assert "slowest recent requests" in out

    def test_count_limits_frames(self, live_server, capsys):
        assert main(["top", "--url", live_server, "--count", "2",
                     "--interval", "0"]) == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_unreachable_server_reports_error(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:9",
                     "--once"]) == 2
        assert "error" in capsys.readouterr().err


class TestEvaluateTrace:
    def test_evaluate_trace_written(self, query_file, db_file, tmp_path,
                                    capsys):
        trace = tmp_path / "eval.jsonl"
        assert main(["evaluate", query_file, "--db", db_file,
                     "--trace", str(trace)]) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert "evaluate" in names and "evaluate.rule" in names
        rule = next(r for r in records if r["name"] == "evaluate.rule")
        assert rule["attrs"]["assignments"] >= 1


class TestFuzzTrace:
    def test_fuzz_trace_written(self, tmp_path, capsys):
        trace = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--iterations", "2", "--oracle", "semantic",
                     "--trace", str(trace)]) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert {"fuzz.iteration", "oracle.semantic"} <= \
            {r["name"] for r in records}

    def test_trace_rejected_with_replay(self, tmp_path, capsys):
        import glob
        import os
        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        path = sorted(glob.glob(os.path.join(corpus, "*.json")))[0]
        assert main(["fuzz", "--replay", path,
                     "--trace", str(tmp_path / "t.jsonl")]) == 2
        assert "--replay" in capsys.readouterr().err
