"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.oem import dumps
from repro.workloads import figure3_database


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "q.tsl"
    path.write_text(
        '<hit(P) title T> :- <P pub {<B booktitle "SIGMOD">}>@db AND '
        '<P pub {<X title T>}>@db')
    return str(path)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(dumps(figure3_database()))
    return str(path)


@pytest.fixture
def view_file(tmp_path):
    path = tmp_path / "v.tsl"
    path.write_text(
        '<v(P) pub {<c(P,L,W) L W>}> :- '
        '<P pub {<B booktitle "SIGMOD">}>@db AND <P pub {<X L W>}>@db')
    return str(path)


class TestValidate:
    def test_valid_query(self, query_file, capsys):
        assert main(["validate", query_file]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_query(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsl"
        bad.write_text("<f(P) x W> :- <P a V>@db")  # unsafe
        assert main(["validate", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent.tsl"]) == 2


class TestEvaluate:
    def test_json_output(self, query_file, db_file, capsys):
        assert main(["evaluate", query_file, "--db", db_file]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["name"] == "answer"
        assert "1 root object(s)" in captured.err

    def test_dot_output(self, query_file, db_file, capsys):
        assert main(["evaluate", query_file, "--db", db_file,
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "answer"')
        assert "Constraint Views" in out


class TestRewrite:
    def test_rewriting_found(self, query_file, view_file, capsys):
        assert main(["rewrite", query_file,
                     "--view", f"V={view_file}"]) == 0
        out = capsys.readouterr().out
        assert "@V" in out
        assert "% equivalent" in out

    def test_no_rewriting(self, tmp_path, view_file, capsys):
        query = tmp_path / "q2.tsl"
        query.write_text("<f(P) x V> :- <P nothing V>@db")
        assert main(["rewrite", str(query),
                     "--view", f"V={view_file}"]) == 1
        assert "no rewriting" in capsys.readouterr().err

    def test_contained_mode(self, tmp_path, view_file, capsys):
        query = tmp_path / "q3.tsl"
        query.write_text("<f(P) title T> :- <P pub {<X title T>}>@db")
        assert main(["rewrite", str(query), "--view", f"V={view_file}",
                     "--contained"]) == 0
        assert "% contained" in capsys.readouterr().out

    def test_bad_view_spec(self, query_file, capsys):
        assert main(["rewrite", query_file, "--view", "noequals"]) == 2

    def test_with_dtd(self, tmp_path, capsys):
        from repro.rewriting.constraints import PAPER_DTD
        query = tmp_path / "q7.tsl"
        query.write_text(
            "<f(P) stanford yes> :- "
            "<P p {<X name {<Z last stanford>}>}>@db")
        view = tmp_path / "v1.tsl"
        view.write_text(
            "<g(P') p {<pp(P',Y') pr Y'> <h(X') v Z'>}> :- "
            "<P' p {<X' Y' Z'>}>@db")
        dtd = tmp_path / "people.dtd"
        dtd.write_text(PAPER_DTD)
        assert main(["rewrite", str(query), "--view", f"V1={view}"]) == 1
        assert main(["rewrite", str(query), "--view", f"V1={view}",
                     "--dtd", str(dtd)]) == 0


class TestImportXml:
    def test_stdout(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("<r><a>1</a></r>")
        assert main(["import-xml", str(doc)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "db"

    def test_output_file_and_dtd_notice(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("""<!DOCTYPE r [
            <!ELEMENT r (a)> <!ELEMENT a CDATA>
        ]><r><a>1</a></r>""")
        out = tmp_path / "db.json"
        assert main(["import-xml", str(doc), "-o", str(out),
                     "--name", "src1"]) == 0
        data = json.loads(out.read_text())
        assert data["name"] == "src1"
        assert "internal DTD found" in capsys.readouterr().err


class TestFuzz:
    def test_green_campaign_text(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "OK: 8 iterations" in out

    def test_green_campaign_json(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "4",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["iterations"] == 4
        assert set(data["checks"]) == {"containment", "metamorphic",
                                       "semantic"}

    def test_oracle_and_profile_selection(self, capsys):
        assert main(["fuzz", "--seed", "1", "--iterations", "3",
                     "--oracle", "semantic",
                     "--profile", "conjunctive", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["checks"]) == {"semantic"}

    def test_unknown_profile_rejected(self, capsys):
        assert main(["fuzz", "--profile", "nonsense"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_replay_corpus_case(self, capsys):
        import glob
        import os
        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        path = sorted(glob.glob(os.path.join(corpus, "*.json")))[0]
        assert main(["fuzz", "--replay", path, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_failures_exit_one_and_save_corpus(self, tmp_path, capsys,
                                               monkeypatch):
        import importlib
        chase_mod = importlib.import_module("repro.rewriting.chase")
        monkeypatch.setattr(
            chase_mod, "_drop_subsumed_empty_paths",
            lambda paths: paths[:-1] if len(paths) > 1 else paths)
        assert main(["fuzz", "--seed", "0", "--iterations", "6",
                     "--corpus", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAILURE" in out
        assert "saved:" in out
        assert list(tmp_path.glob("*.json"))
