"""Golden tests: every diagnostic code, with severity and span positions."""

from repro.analysis import Severity, analyze
from repro.rewriting.constraints import paper_dtd
from repro.span import Span
from repro.tsl import parse_query


def findings(text, code, **kwargs):
    query = parse_query(text)
    return [d for d in analyze(query, source_text=text, **kwargs)
            if d.code == code]


def span_at(text, needle, width=None):
    """The span of the first occurrence of *needle* in one-line *text*."""
    column = text.index(needle) + 1
    return Span(1, column, 1, column + (width or len(needle)))


class TestWellformedCodes:
    def test_tsl001_unsafe_head_variable(self):
        text = "<f(P) x W> :- <P a V>@db"
        (diag,) = findings(text, "TSL001")
        assert diag.severity is Severity.ERROR
        assert diag.span == Span(1, 9, 1, 10)
        assert "W" in diag.message

    def test_tsl002_oid_data_overlap(self):
        text = "<f(X) x W> :- <X Y {<Y Z W>}>@db"
        (diag,) = findings(text, "TSL002")
        assert diag.severity is Severity.ERROR
        # Points at the first label/value use of Y, not the oid use.
        assert diag.span == Span(1, 18, 1, 19)

    def test_tsl003_cyclic_pattern(self):
        text = "<f(X) r 1> :- <X a {<X b V>}>@db"
        (diag,) = findings(text, "TSL003")
        assert diag.severity is Severity.ERROR
        assert diag.span == Span(1, 21, 1, 28)  # the nested <X b V>

    def test_tsl004_bare_variable_head_oid(self):
        text = "<P x V> :- <P a V>@db"
        (diag,) = findings(text, "TSL004")
        assert diag.severity is Severity.ERROR
        assert diag.span == Span(1, 2, 1, 3)

    def test_tsl004_duplicate_head_oid(self):
        text = "<f(P) x {<f(P) y V>}> :- <P a V>@db"
        (diag,) = findings(text, "TSL004")
        assert "unique" in diag.message
        assert diag.span == span_at(text, "f(P) y", width=4)

    def test_tsl005_function_term_value(self):
        text = "<f(P) x g(P)> :- <P a V>@db"
        (diag,) = findings(text, "TSL005")
        assert diag.severity is Severity.ERROR
        assert diag.span == Span(1, 9, 1, 13)

    def test_tsl005_function_term_label(self):
        text = "<f(P) g(X) V> :- <P a {<X b V>}>@db"
        assert [d.code for d in findings(text, "TSL005")] == ["TSL005"]


class TestStyleCodes:
    def test_tsl101_singleton_data_variable(self):
        text = "<f(P) x V> :- <P a V>@db AND <P b W>@db"
        (diag,) = findings(text, "TSL101")
        assert diag.severity is Severity.WARNING
        assert diag.span == span_at(text, "W")
        assert "W" in diag.message

    def test_tsl101_oid_singletons_are_idiomatic(self):
        # B and X occur once each but stand in oid fields: no warning.
        text = ('<hit(P) title T> :- <P pub {<B booktitle "SIGMOD">}>@db '
                'AND <P pub {<X title T>}>@db')
        assert findings(text, "TSL101") == []

    def test_tsl101_dollar_parameters_exempt(self):
        text = "<f(P) year $Y> :- <P pub {<X year $Y>}>@db AND <P t V>@db"
        assert [d.message for d in findings(text, "TSL101")] == [
            "variable V occurs only once in the query"]

    def test_tsl102_duplicate_condition(self):
        text = "<f(P) x V> :- <P a V>@db AND <P a V>@db"
        diags = findings(text, "TSL102")
        assert len(diags) == 2  # each duplicate is implied by the other
        assert diags[0].severity is Severity.WARNING
        assert diags[0].span == Span(1, 15, 1, 25)
        assert diags[1].span == Span(1, 30, 1, 40)

    def test_tsl102_subsumed_condition(self):
        # <P a W> (W used nowhere else) is implied by <P a V>.
        text = "<f(P) x V> :- <P a V>@db AND <P a W>@db"
        diags = findings(text, "TSL102")
        assert [d.span for d in diags] == [Span(1, 30, 1, 40)]

    def test_tsl102_not_fired_when_binding_matters(self):
        text = "<f(P) x V> :- <P a V>@db AND <P b V>@db"
        assert findings(text, "TSL102") == []

    def test_tsl103_disconnected_body(self):
        text = "<f(P) x V> :- <P a V>@db AND <Q b W>@db"
        (diag,) = findings(text, "TSL103")
        assert diag.severity is Severity.WARNING
        assert diag.span == Span(1, 30, 1, 40)
        assert "cartesian" in diag.message

    def test_tsl103_connected_body_clean(self):
        text = "<f(P) x V> :- <P a V>@db AND <P b W>@db"
        assert findings(text, "TSL103") == []


class TestDtdCodes:
    def test_tsl201_forbidden_child(self):
        text = "<f(P) x yes> :- <P p {<X junk V>}>@db"
        (diag,) = findings(text, "TSL201", dtd=paper_dtd())
        assert diag.severity is Severity.WARNING
        assert diag.span == span_at(text, "junk")
        assert "unsatisfiable" in diag.message

    def test_tsl201_set_pattern_under_atomic_element(self):
        text = "<f(P) x yes> :- <P p {<X phone {<Z a V>}>}>@db"
        diags = findings(text, "TSL201", dtd=paper_dtd())
        assert any("atomic content" in d.message for d in diags)

    def test_tsl201_atomic_value_on_set_element(self):
        text = "<f(P) x yes> :- <P p {<X name joe>}>@db"
        (diag,) = findings(text, "TSL201", dtd=paper_dtd())
        assert "element content" in diag.message
        assert diag.span == span_at(text, "joe")

    def test_tsl201_no_admissible_middle_label(self):
        # Nothing between p and phone: phone is atomic everywhere.
        text = "<f(P) x yes> :- <P p {<X L {<Z phone V>}>}>@db"
        (diag,) = findings(text, "TSL201", dtd=paper_dtd())
        assert diag.span == span_at(text, "phone")

    def test_tsl201_requires_no_rewriter(self, monkeypatch):
        import importlib

        chase_mod = importlib.import_module("repro.rewriting.chase")
        comp_mod = importlib.import_module("repro.rewriting.composition")
        rew_mod = importlib.import_module("repro.rewriting.rewriter")

        def boom(*args, **kwargs):
            raise AssertionError("the rewriting pipeline must not run")

        monkeypatch.setattr(rew_mod, "rewrite", boom)
        monkeypatch.setattr(rew_mod, "find_all_rewritings", boom)
        monkeypatch.setattr(comp_mod, "compose", boom)
        monkeypatch.setattr(chase_mod, "chase", boom)
        text = "<f(P) x yes> :- <P p {<X junk V>}>@db"
        assert findings(text, "TSL201", dtd=paper_dtd())

    def test_tsl202_unique_middle_label_inferred(self):
        text = "<f(P) yes V> :- <P p {<X L {<Z last V>}>}>@db"
        (diag,) = findings(text, "TSL202", dtd=paper_dtd())
        assert diag.severity is Severity.INFO
        assert diag.span == span_at(text, "L", width=1)
        assert "name" in diag.message
        assert diag.suggestion == "replace L with name"

    def test_satisfiable_query_clean(self, q7):
        from repro.tsl import print_query
        text = print_query(q7)
        diags = [d for d in analyze(parse_query(text), source_text=text,
                                    dtd=paper_dtd())
                 if d.code.startswith("TSL2")]
        assert diags == []

    def test_other_sources_ignored(self):
        text = "<f(P) x yes> :- <P p {<X junk V>}>@other"
        assert findings(text, "TSL201", dtd=paper_dtd()) == []


class TestViewCodes:
    def test_tsl301_view_without_exported_variables(self):
        query_text = "<f(P) x V> :- <P a V>@db"
        view_text = "<v all yes> :- <P p {<X name N>}>@db"
        view = parse_query(view_text, name="V1")
        diags = [d for d in analyze(parse_query(query_text),
                                    source_text=query_text,
                                    views={"V1": view},
                                    view_files={"V1": "v.tsl"})
                 if d.code == "TSL301"]
        (diag,) = diags
        assert diag.severity is Severity.WARNING
        assert diag.span == Span(1, 1, 1, 12)
        assert diag.file == "v.tsl"
        assert "V1" in diag.message

    def test_tsl301_exporting_view_clean(self):
        view = parse_query("<v(P) x V> :- <P a V>@db", name="V1")
        diags = analyze(parse_query("<f(P) x V> :- <P a V>@db"),
                        views={"V1": view})
        assert [d for d in diags if d.code == "TSL301"] == []


class TestAnalyzerPlumbing:
    def test_findings_sorted_by_position(self):
        text = "<f(P) x W> :- <Q a V>@db AND <R b 1>@db"
        diags = analyze(parse_query(text), source_text=text,
                        source_name="q.tsl")
        positions = [(d.span.line, d.span.column) for d in diags if d.span]
        assert positions == sorted(positions)
        assert all(d.file == "q.tsl" for d in diags)

    def test_pass_selection(self):
        text = "<f(P) x W> :- <P a V>@db AND <Q b 1>@db"
        only_wf = analyze(parse_query(text), passes=["wellformed"])
        assert {d.code for d in only_wf} == {"TSL001"}

    def test_clean_query_has_no_findings(self):
        text = ("<f(P) female {<f(X) Y Z>}> :- "
                "<P person {<G gender female>}>@db AND "
                "<P person {<X Y Z>}>@db")
        assert analyze(parse_query(text), source_text=text) == []

    def test_hand_built_query_without_spans(self):
        # Programmatic ASTs have no spans; diagnostics must still work.
        from repro.logic.terms import Constant, Variable
        from repro.tsl.ast import Condition, ObjectPattern, Query
        query = Query(
            ObjectPattern(Constant("h"), Constant("x"), Variable("W")),
            (Condition(ObjectPattern(Variable("P"), Constant("a"),
                                     Variable("V"))),))
        (diag,) = [d for d in analyze(query) if d.code == "TSL001"]
        assert diag.span is None
