"""End-to-end tests for ``python -m repro check-views`` and
``lint --views-only``."""

import json

import pytest

from repro.cli import main

CLEAN_VIEW = "<a(P) x V> :- <P alpha V>@db"
DUP_VIEW = "<a(Q) x W> :- <Q alpha W>@db"
UNSAFE_VIEW = "<u(P) x W> :- <P alpha V>@db"


@pytest.fixture
def config(tmp_path):
    def _config(payload, **files):
        for name, text in files.items():
            (tmp_path / name).write_text(text, encoding="utf-8")
        path = tmp_path / "mediator.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)
    return _config


def check_views(capsys, *argv):
    code = main(["check-views", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_config_exits_zero(self, config, capsys):
        path = config({"views": {"VA": "va.tsl"}},
                      **{"va.tsl": CLEAN_VIEW})
        code, out, err = check_views(capsys, path, "--strict")
        assert code == 0
        assert out == ""
        assert "clean" in err

    def test_warnings_exit_zero_by_default(self, config, capsys):
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW})
        code, out, _ = check_views(capsys, path)
        assert code == 0
        assert "TSL401" in out

    def test_warnings_exit_one_under_strict(self, config, capsys):
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW})
        code, _, _ = check_views(capsys, path, "--strict")
        assert code == 1

    def test_errors_exit_two(self, config, capsys):
        path = config({"views": {"VU": "vu.tsl"}},
                      **{"vu.tsl": UNSAFE_VIEW})
        code, out, _ = check_views(capsys, path)
        assert code == 2
        assert "TSL404" in out

    def test_config_error_exits_two(self, config, capsys, tmp_path):
        path = config({"views": {"V": "missing.tsl"}})
        code, _, err = check_views(capsys, path)
        assert code == 2
        assert "missing.tsl" in err


class TestRendering:
    def test_text_renders_carets_from_view_files(self, config, capsys):
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW})
        _, out, _ = check_views(capsys, path)
        assert "va2.tsl:1:1:" in out
        assert "^" in out

    def test_inline_views_are_attributed_to_the_config(self, config,
                                                       capsys):
        path = config({"views": {
            "VA": {"text": CLEAN_VIEW},
            "VA2": {"text": DUP_VIEW}}})
        _, out, _ = check_views(capsys, path)
        assert f"{path}#views.VA2:1:1:" in out

    def test_json_format(self, config, capsys):
        path = config({"views": {"VU": "vu.tsl"}},
                      **{"vu.tsl": UNSAFE_VIEW})
        code, out, _ = check_views(capsys, path, "--format", "json")
        payload = json.loads(out)
        assert payload["summary"]["error"] == 1
        assert payload["diagnostics"][0]["code"] == "TSL404"

    def test_sarif_format(self, config, capsys):
        path = config({"views": {"VU": "vu.tsl"}},
                      **{"vu.tsl": UNSAFE_VIEW})
        _, out, _ = check_views(capsys, path, "--format", "sarif")
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == \
            "repro-check-views"
        assert doc["runs"][0]["results"][0]["ruleId"] == "TSL404"

    def test_broken_view_reported_as_tsl000(self, config, capsys):
        path = config({"views": {
            "VBAD": {"text": "<a(P) x V> :- <P a V@db"}}})
        code, out, _ = check_views(capsys, path)
        assert code == 2
        assert "TSL000" in out


class TestBaseline:
    def test_update_then_suppress(self, config, capsys, tmp_path):
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW})
        baseline = str(tmp_path / "baseline.json")
        code, _, err = check_views(capsys, path, "--baseline", baseline,
                                   "--update-baseline")
        assert code == 0 and "1 suppression(s)" in err
        code, out, err = check_views(capsys, path, "--baseline", baseline,
                                     "--strict")
        assert code == 0
        assert out == ""
        assert "1 suppressed by baseline" in err

    def test_new_finding_still_gates(self, config, capsys, tmp_path):
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW})
        baseline = str(tmp_path / "baseline.json")
        check_views(capsys, path, "--baseline", baseline,
                    "--update-baseline")
        path = config({"views": {"VA": "va.tsl", "VA2": "va2.tsl",
                                 "VU": "vu.tsl"}},
                      **{"va.tsl": CLEAN_VIEW, "va2.tsl": DUP_VIEW,
                         "vu.tsl": UNSAFE_VIEW})
        code, out, err = check_views(capsys, path, "--baseline", baseline)
        assert code == 2
        assert "TSL404" in out and "TSL401" not in out
        assert "1 new finding(s)" in err

    def test_update_baseline_requires_a_path(self, config, capsys):
        path = config({"views": {}})
        code, _, err = check_views(capsys, path, "--update-baseline")
        assert code == 2
        assert "--baseline" in err


class TestLintViewsOnly:
    def test_runs_the_viewset_passes(self, tmp_path, capsys):
        va = tmp_path / "va.tsl"
        va.write_text(CLEAN_VIEW, encoding="utf-8")
        va2 = tmp_path / "va2.tsl"
        va2.write_text(DUP_VIEW, encoding="utf-8")
        code = main(["lint", "--views-only", "--view", f"VA={va}",
                     "--view", f"VA2={va2}"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TSL401" in out

    def test_rejects_a_query_argument(self, tmp_path, capsys):
        va = tmp_path / "va.tsl"
        va.write_text(CLEAN_VIEW, encoding="utf-8")
        code = main(["lint", "--views-only", str(va),
                     "--view", f"VA={va}"])
        assert code == 2
        assert "takes no query" in capsys.readouterr().err

    def test_requires_views(self, capsys):
        code = main(["lint", "--views-only"])
        assert code == 2
        assert "--view" in capsys.readouterr().err

    def test_plain_lint_still_requires_a_query(self, capsys):
        code = main(["lint"])
        assert code == 2
        assert "query" in capsys.readouterr().err

    def test_lint_sarif_format(self, tmp_path, capsys):
        q = tmp_path / "q.tsl"
        q.write_text("<f(P) x W> :- <P a V>@db", encoding="utf-8")
        code = main(["lint", str(q), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert doc["runs"][0]["results"][0]["ruleId"] == "TSL001"
