"""SARIF 2.1.0 rendering: shape, levels, fingerprints, golden file."""

import json
from pathlib import Path

from repro.analysis import analyze, render_sarif
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.viewset.baseline import fingerprint
from repro.tsl import parse_query

GOLDEN = Path(__file__).parent / "golden" / "lint.sarif"


def sample_diagnostics():
    """A deterministic mix: spanned error, spanned warning, span-less."""
    text = "<f(P) x W> :- <P a V>@db AND <P b V>@db"
    query = parse_query(text)
    headless = parse_query("<v all yes> :- <P q V>@db", name="V1")
    return analyze(query, source_text=text, source_name="q.tsl",
                   views={"V1": headless})


class TestShape:
    def test_document_is_valid_sarif_210(self):
        doc = json.loads(render_sarif(sample_diagnostics()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == len(sample_diagnostics())

    def test_tool_name_is_configurable(self):
        doc = json.loads(render_sarif([], tool_name="repro-check-views"))
        assert doc["runs"][0]["tool"]["driver"]["name"] == \
            "repro-check-views"

    def test_rules_list_the_distinct_codes_sorted(self):
        doc = json.loads(render_sarif(sample_diagnostics()))
        rules = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert rules == sorted(set(rules))
        results = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert results == set(rules)

    def test_levels_map_from_severities(self):
        diags = [Diagnostic("TSL900", Severity.ERROR, "e"),
                 Diagnostic("TSL901", Severity.WARNING, "w"),
                 Diagnostic("TSL902", Severity.INFO, "i")]
        doc = json.loads(render_sarif(diags))
        levels = {r["ruleId"]: r["level"]
                  for r in doc["runs"][0]["results"]}
        assert levels == {"TSL900": "error", "TSL901": "warning",
                          "TSL902": "note"}

    def test_region_is_one_based_and_omitted_without_a_span(self):
        doc = json.loads(render_sarif(sample_diagnostics()))
        results = doc["runs"][0]["results"]
        spanned = [r for r in results
                   if r["locations"]
                   and "region" in r["locations"][0]["physicalLocation"]]
        assert spanned
        region = spanned[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        spanless = [r for r in results if r["ruleId"] == "TSL301"]
        location = spanless[0]["locations"][0]["physicalLocation"]
        assert "region" not in location
        assert location["artifactLocation"]["uri"] == "V1"

    def test_results_carry_the_baseline_fingerprint(self):
        diags = sample_diagnostics()
        doc = json.loads(render_sarif(diags))
        for diag, result in zip(diags, doc["runs"][0]["results"]):
            assert result["partialFingerprints"] == {
                "reproFingerprint/v1": fingerprint(diag)}

    def test_suggestion_is_appended_to_the_message(self):
        diags = [d for d in sample_diagnostics() if d.suggestion]
        doc = json.loads(render_sarif(diags))
        text = doc["runs"][0]["results"][0]["message"]["text"]
        assert "(help: " in text


class TestGolden:
    def test_rendering_matches_the_golden_file(self):
        assert render_sarif(sample_diagnostics()) == GOLDEN.read_text()

    def test_rendering_is_deterministic(self):
        assert render_sarif(sample_diagnostics()) == \
            render_sarif(sample_diagnostics())

    def test_ends_with_exactly_one_newline(self):
        rendered = render_sarif(sample_diagnostics())
        assert rendered.endswith("\n") and not rendered.endswith("\n\n")
