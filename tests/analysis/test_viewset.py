"""View-set analysis: signatures, TSL4xx passes, configs, baselines.

The mutation-calibration classes follow the oracle-test idiom: start
from a configuration the analyzer reports clean, plant exactly one
defect, and demand exactly the expected code fires.  A pass that cannot
see its own planted defect is miscalibrated regardless of how many
tests its happy path survives.
"""

import json

import pytest

from repro.analysis import analyze, analyze_view_set
from repro.analysis.diagnostics import Severity, registered_passes
from repro.analysis.viewset import (Baseline, LabelSignatureIndex,
                                    fingerprint, load_baseline, load_config,
                                    query_profile, view_signature,
                                    write_baseline)
from repro.errors import ConfigError
from repro.mediator.capabilities import (CapabilityView,
                                         bindable_parameters,
                                         parameters_of)
from repro.rewriting import parse_dtd
from repro.span import Span
from repro.tsl import parse_query

DTD_TEXT = """\
<!ELEMENT p (name, phone)>
<!ELEMENT name (last, first)>
<!ELEMENT phone CDATA>
<!ELEMENT last CDATA>
<!ELEMENT first CDATA>
"""


def view(text, name="V"):
    return parse_query(text, name=name)


def capability(text, name="C"):
    query = parse_query(text, name=name)
    return CapabilityView(name, query, parameters_of(query))


def codes(diags):
    return [d.code for d in diags]


#: A configuration every pass reports clean: label-disjoint bodies,
#: distinct head functors, safe heads, no DTD, bindable parameters.
def clean_views():
    return {
        "VA": view("<a(P) x V> :- <P alpha V>@db", name="VA"),
        "VB": view("<b(P) y V> :- <P beta V>@db", name="VB"),
    }


def clean_capabilities():
    return {"CN": capability("<c(P) name $N> :- <P name $N>@db",
                             name="CN")}


class TestSignature:
    def test_signature_collects_labels_leaves_and_sources(self):
        v = view('<a(P) x V> :- <P alpha {<X beta "k">}>@src')
        sig = view_signature(v)
        assert sig.labels == frozenset({"alpha", "beta"})
        assert sig.leaves == frozenset({"k"})
        assert sig.sources == frozenset({"src"})

    def test_variable_labels_do_not_constrain(self):
        sig = view_signature(view("<a(P) x V> :- <P L V>@db"))
        assert sig.labels == frozenset()

    def test_admissible_iff_parts_subset_of_profile(self):
        sig = view_signature(view("<a(P) x V> :- <P alpha V>@db"))
        yes = query_profile(view("<f(P) x V> :- <P alpha V>@db AND "
                                 "<P beta V>@db"))
        no = query_profile(view("<f(P) x V> :- <P beta V>@db"))
        assert sig.admissible_for(yes)
        assert not sig.admissible_for(no)
        assert "alpha" in sig.missing_from(no)

    def test_index_prunes_by_label_and_keeps_unknown_views(self):
        index = LabelSignatureIndex.from_views(clean_views())
        profile = query_profile(view("<f(P) x V> :- <P alpha V>@db"))
        assert index.admissible_views(profile) == ["VA"]
        assert index.admissible("VA", profile)
        assert not index.admissible("VB", profile)
        # A view the index never saw must not be filtered out.
        assert index.admissible("V-unknown", profile)

    def test_index_skips_contradictory_views(self):
        views = dict(clean_views())
        views["VBAD"] = view("<z(P) x N> :- <P name N>@db AND "
                             "<P age A>@db", name="VBAD")
        index = LabelSignatureIndex.from_views(views)
        assert index.signature("VBAD") is None
        assert len(index) == 2

    def test_signature_uses_the_chased_view(self):
        # The DTD chase can add required structure; the signature must
        # reflect it or the pre-filter would be unsound.
        dtd = parse_dtd(DTD_TEXT)
        index = LabelSignatureIndex.from_views(
            {"VP": view("<a(P) x V> :- <P p {<X phone V>}>@db",
                        name="VP")},
            constraints=dtd)
        assert "p" in index.signature("VP").labels


class TestCleanConfiguration:
    def test_clean_views_report_nothing(self):
        assert analyze_view_set(clean_views(),
                                capabilities=clean_capabilities()) == []

    def test_all_passes_are_registered(self):
        assert set(registered_passes(scope="viewset")) == {
            "view-duplicate", "view-subsumed", "view-dtd",
            "view-safety", "view-capability"}

    def test_viewset_passes_stay_out_of_query_scope(self):
        assert "view-duplicate" not in registered_passes()


class TestDuplicateCalibration:
    def test_planted_duplicate_fires_tsl401_only(self):
        views = clean_views()
        views["VA2"] = view("<a(Q) x W> :- <Q alpha W>@db", name="VA2")
        diags = analyze_view_set(views)
        assert codes(diags) == ["TSL401"]
        assert "VA2" in diags[0].message and "VA" in diags[0].message
        assert diags[0].file == "VA2"
        assert diags[0].span is None  # API-registered: no text to point at

    def test_different_head_functor_is_not_a_duplicate(self):
        views = clean_views()
        views["VA2"] = view("<other(P) x V> :- <P alpha V>@db",
                            name="VA2")
        assert analyze_view_set(views) == []


class TestSubsumedCalibration:
    def test_planted_subsumed_view_fires_tsl402_only(self):
        views = clean_views()
        views["VNARROW"] = view(
            "<a(P) x {<c(X) y V>}> :- <P alpha {<X beta V>}>@db AND "
            "<P alpha {<Y gamma W>}>@db", name="VNARROW")
        views["VA"] = view("<a(P) x {<c(X) y V>}> :- "
                           "<P alpha {<X beta V>}>@db", name="VA")
        diags = analyze_view_set(views)
        assert codes(diags) == ["TSL402"]
        assert "VNARROW is contained in view VA" in diags[0].message

    def test_containment_needs_the_same_head_functor(self):
        views = {
            "VW": view("<wide(P) x {<c(X) y V>}> :- "
                       "<P alpha {<X beta V>}>@db", name="VW"),
            "VN": view("<narrow(P) x {<c(X) y V>}> :- "
                       "<P alpha {<X beta V>}>@db AND "
                       "<P alpha {<Y gamma W>}>@db", name="VN"),
        }
        assert analyze_view_set(views) == []


class TestDtdCalibration:
    def test_planted_dtd_violation_fires_tsl403_only(self):
        views = clean_views()
        views["VJ"] = view("<j(P) x V> :- <P p {<X junk V>}>@db",
                           name="VJ")
        diags = analyze_view_set(views, dtd=parse_dtd(DTD_TEXT))
        assert codes(diags) == ["TSL403"]
        assert "unsatisfiable under the DTD" in diags[0].message
        assert "VJ" in diags[0].message

    def test_chase_contradiction_fires_tsl403_without_a_dtd(self):
        views = clean_views()
        views["VC"] = view("<c(P) x N> :- <P name N>@db AND "
                           "<P age A>@db", name="VC")
        diags = analyze_view_set(views)
        assert codes(diags) == ["TSL403"]
        assert "chase derives a contradiction" in diags[0].message


class TestSafetyCalibration:
    def test_planted_unsafe_head_fires_tsl404_only(self):
        views = clean_views()
        views["VU"] = view("<u(P) x W> :- <P alpha V>@db", name="VU")
        diags = analyze_view_set(views)
        assert codes(diags) == ["TSL404"]
        assert diags[0].severity is Severity.ERROR
        assert "head variable W" in diags[0].message


class TestCapabilityCalibration:
    def test_oid_only_parameter_fires_tsl405_only(self):
        caps = clean_capabilities()
        caps["CO"] = capability("<c(N) hit yes> :- "
                                "<$P p {<X name N>}>@db", name="CO")
        diags = analyze_view_set(clean_views(), capabilities=caps)
        assert codes(diags) == ["TSL405"]
        assert "only in object-id positions" in diags[0].message

    def test_head_only_parameter_fires_tsl405_only(self):
        caps = clean_capabilities()
        caps["CH"] = capability("<c(P) x $Z> :- <P alpha V>@db",
                                name="CH")
        diags = analyze_view_set(clean_views(), capabilities=caps)
        assert codes(diags) == ["TSL405"]
        assert "nowhere in the body" in diags[0].message

    def test_bindable_parameters_sees_labels_and_leaves(self):
        query = parse_query("<c(P) x $V> :- <P $L {<X name $V>}>@db")
        assert {v.name for v in bindable_parameters(query)} == \
            {"$L", "$V"}


class TestSpanAttribution:
    def test_file_backed_views_carry_spans(self, tmp_path):
        text = "<a2(Q) x W> :- <Q alpha W>@db"
        views = clean_views()
        views["VA2"] = view("<a(Q) x W> :- <Q alpha W>@db", name="VA2")
        diags = analyze_view_set(views,
                                 view_files={"VA2": "va2.tsl",
                                             "VA": "va.tsl",
                                             "VB": "vb.tsl"})
        (diag,) = diags
        assert diag.file == "va2.tsl"
        assert diag.span == views["VA2"].head.span

    def test_tsl301_api_registered_view_has_no_bogus_span(self):
        # Satellite regression: analyze() with a views mapping but no
        # view_files used to attribute the view's own span to the
        # *query* file, rendering carets into the wrong text.
        query = parse_query("<f(P) x V> :- <P a V>@db AND <P b V>@db")
        headless = parse_query("<v all yes> :- <P q V>@db", name="V1")
        diags = [d for d in analyze(query, source_name="q.tsl",
                                    views={"V1": headless})
                 if d.code == "TSL301"]
        (diag,) = diags
        assert diag.span is None
        assert diag.file == "V1"

    def test_tsl301_file_backed_view_keeps_its_span(self):
        query = parse_query("<f(P) x V> :- <P a V>@db AND <P b V>@db")
        headless = parse_query("<v all yes> :- <P q V>@db", name="V1")
        diags = [d for d in analyze(query, source_name="q.tsl",
                                    views={"V1": headless},
                                    view_files={"V1": "v.tsl"})
                 if d.code == "TSL301"]
        (diag,) = diags
        assert diag.span == headless.head.span
        assert diag.file == "v.tsl"


class TestConfigLoading:
    def write_config(self, tmp_path, payload, **files):
        for name, text in files.items():
            (tmp_path / name).write_text(text, encoding="utf-8")
        path = tmp_path / "mediator.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_loads_files_and_inline_entries(self, tmp_path):
        path = self.write_config(
            tmp_path,
            {"dtd": "p.dtd",
             "views": {"VF": "vf.tsl",
                       "VI": {"text": "<b(P) y V> :- <P beta V>@db"}},
             "capabilities": {"CN": {
                 "text": "<c(P) name $N> :- <P name $N>@db"}}},
            **{"vf.tsl": "<a(P) x V> :- <P alpha V>@db",
               "p.dtd": DTD_TEXT})
        config = load_config(path)
        assert sorted(config.views) == ["VF", "VI"]
        assert config.view_files["VF"] == "vf.tsl"
        assert config.view_files["VI"] == f"{path}#views.VI"
        assert config.texts["vf.tsl"].startswith("<a(P)")
        assert config.dtd is not None and config.dtd_file == "p.dtd"
        assert sorted(config.capabilities) == ["CN"]
        assert config.diagnostics == []

    def test_broken_view_becomes_tsl000_not_a_crash(self, tmp_path):
        path = self.write_config(
            tmp_path,
            {"views": {"VBAD": {"text": "<a(P) x V> :- <P a V@db"},
                       "VOK": {"text": "<b(P) y V> :- <P b V>@db"}}})
        config = load_config(path)
        assert sorted(config.views) == ["VOK"]
        (diag,) = config.diagnostics
        assert diag.code == "TSL000"
        assert diag.file == f"{path}#views.VBAD"

    def test_unknown_key_raises_config_error(self, tmp_path):
        path = self.write_config(tmp_path, {"view": {}})
        with pytest.raises(ConfigError, match="unknown configuration"):
            load_config(path)

    def test_missing_view_file_raises_config_error(self, tmp_path):
        path = self.write_config(tmp_path,
                                 {"views": {"V": "nope.tsl"}})
        with pytest.raises(ConfigError, match="cannot read nope.tsl"):
            load_config(path)

    def test_invalid_json_raises_config_error(self, tmp_path):
        path = tmp_path / "mediator.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config(str(path))

    def test_dtd_object_form_sets_the_source(self, tmp_path):
        path = self.write_config(
            tmp_path,
            {"dtd": {"file": "p.dtd", "source": "warehouse"},
             "views": {}},
            **{"p.dtd": DTD_TEXT})
        assert load_config(path).dtd.source == "warehouse"


class TestBaseline:
    def make_diags(self):
        views = clean_views()
        views["VA2"] = view("<a(Q) x W> :- <Q alpha W>@db", name="VA2")
        views["VU"] = view("<u(P) x W> :- <P alpha V>@db", name="VU")
        return analyze_view_set(views)

    def test_roundtrip_suppresses_exactly_the_written_set(self, tmp_path):
        diags = self.make_diags()
        path = str(tmp_path / "baseline.json")
        write_baseline(path, diags)
        baseline = load_baseline(path)
        new, suppressed = baseline.partition(diags)
        assert new == [] and len(suppressed) == len(diags)

    def test_new_findings_survive_the_partition(self, tmp_path):
        diags = self.make_diags()
        path = str(tmp_path / "baseline.json")
        write_baseline(path, diags[:1])
        new, suppressed = load_baseline(path).partition(diags)
        assert new == diags[1:] and suppressed == diags[:1]

    def test_fingerprint_ignores_spans(self):
        diags = self.make_diags()
        moved = diags[0].__class__(
            diags[0].code, diags[0].severity, diags[0].message,
            span=Span(99, 1, 99, 2), file=diags[0].file,
            suggestion=diags[0].suggestion)
        assert fingerprint(moved) == fingerprint(diags[0])

    def test_fingerprint_distinguishes_file_and_message(self):
        diags = self.make_diags()
        assert len({fingerprint(d) for d in diags}) == len(diags)

    def test_load_rejects_non_baseline_files(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema_version": 99}', encoding="utf-8")
        with pytest.raises(ConfigError, match="schema_version"):
            load_baseline(str(path))

    def test_partition_with_empty_baseline(self):
        diags = self.make_diags()
        new, suppressed = Baseline(frozenset()).partition(diags)
        assert new == diags and suppressed == []
