"""Tests for the diagnostics model, registry, and renderers."""

import json

from repro.analysis import (Diagnostic, Severity, registered_passes,
                            render_json, render_text)
from repro.analysis.diagnostics import severity_counts
from repro.span import Span


def diag(**kwargs):
    base = dict(code="TSL001", severity=Severity.ERROR, message="boom",
                span=Span(1, 9, 1, 10), file="q.tsl")
    base.update(kwargs)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_to_dict_shape(self):
        d = diag(suggestion="fix it")
        assert d.to_dict() == {
            "code": "TSL001",
            "severity": "error",
            "message": "boom",
            "file": "q.tsl",
            "span": {"line": 1, "column": 9, "end_line": 1, "end_column": 10},
            "suggestion": "fix it",
        }

    def test_to_dict_without_span(self):
        assert diag(span=None).to_dict()["span"] is None

    def test_with_file_only_fills_missing(self):
        assert diag(file=None).with_file("v.tsl").file == "v.tsl"
        assert diag().with_file("v.tsl").file == "q.tsl"

    def test_severity_is_json_friendly(self):
        assert Severity.WARNING.value == "warning"
        assert str(Severity.ERROR) == "error"


class TestRenderText:
    def test_header_line(self):
        out = render_text(diag())
        assert out == "q.tsl:1:9: error: boom [TSL001]"

    def test_caret_excerpt(self):
        out = render_text(diag(), text="<f(P) x W> :- <P a V>@db")
        lines = out.splitlines()
        assert lines[1].endswith("<f(P) x W> :- <P a V>@db")
        assert lines[2].strip() == "^"
        assert lines[2].index("^") - lines[1].index("<") == 8  # col 9

    def test_suggestion_rendered_as_help(self):
        out = render_text(diag(suggestion="do the thing"))
        assert "help: do the thing" in out

    def test_no_span_no_crash(self):
        out = render_text(diag(span=None), text="irrelevant")
        assert out.startswith("q.tsl: error: boom")

    def test_span_outside_text_is_ignored(self):
        out = render_text(diag(span=Span(99, 1, 99, 2)), text="one line")
        assert out.splitlines() == ["q.tsl:99:1: error: boom [TSL001]"]


class TestRenderJson:
    def test_shape(self):
        payload = json.loads(render_json(
            [diag(), diag(code="TSL101", severity=Severity.WARNING)]))
        assert set(payload) == {"diagnostics", "summary"}
        assert len(payload["diagnostics"]) == 2
        assert payload["summary"] == {"error": 1, "warning": 1, "info": 0}
        first = payload["diagnostics"][0]
        assert set(first) == {"code", "severity", "message", "file",
                              "span", "suggestion"}

    def test_severity_counts(self):
        counts = severity_counts([diag(), diag(severity=Severity.INFO)])
        assert counts == {"error": 1, "warning": 0, "info": 1}


class TestRegistry:
    def test_builtin_passes_registered(self):
        import repro.analysis.analyzer  # noqa: F401 -- registers the passes
        names = list(registered_passes())
        assert names == ["wellformed", "style", "dtd", "views"]
