"""End-to-end tests for ``python -m repro lint``."""

import json

import pytest

from repro.cli import main

DTD_TEXT = """\
<!ELEMENT p (name, phone)>
<!ELEMENT name (last, first)>
<!ELEMENT phone CDATA>
<!ELEMENT last CDATA>
<!ELEMENT first CDATA>
"""


@pytest.fixture
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)
    return _write


def lint(capsys, *argv):
    code = main(["lint", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_query_exits_zero(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :- <P a V>@db AND <P b V>@db")
        code, out, err = lint(capsys, path, "--strict")
        assert code == 0
        assert out == ""
        assert "clean" in err

    def test_warnings_exit_zero_by_default(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :- <P a V>@db AND <P b W>@db")
        code, out, _ = lint(capsys, path)
        assert code == 0
        assert "TSL101" in out

    def test_warnings_exit_one_under_strict(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :- <P a V>@db AND <P b W>@db")
        code, _, err = lint(capsys, path, "--strict")
        assert code == 1
        assert "1 warning(s)" in err

    def test_errors_exit_two(self, write, capsys):
        path = write("q.tsl", "<f(P) x W> :- <P a V>@db")
        code, out, err = lint(capsys, path, "--strict")
        assert code == 2
        assert "TSL001" in out
        assert "1 error(s)" in err


class TestTextOutput:
    def test_header_excerpt_and_caret(self, write, capsys):
        text = "<f(P) x W> :- <P a V>@db"
        path = write("q.tsl", text)
        _, out, _ = lint(capsys, path)
        lines = out.splitlines()
        assert lines[0] == f"{path}:1:9: error: " \
                           "head variable W is not bound in the query " \
                           "body [TSL001]"
        assert lines[1].endswith(text)
        caret_col = lines[2].index("^") - lines[1].index("<")
        assert caret_col == 8  # zero-based offset of column 9

    def test_multiline_query_points_at_right_line(self, write, capsys):
        path = write("q.tsl", "<f(P) x W> :-\n    <P a V>@db\n")
        _, out, _ = lint(capsys, path)
        assert f"{path}:1:9: error:" in out

    def test_view_findings_name_the_view_file(self, write, capsys):
        qpath = write("q.tsl", "<f(P) x V> :- <P a V>@db AND <P b V>@db")
        vpath = write("v.tsl", "<v all yes> :- <P a {<X name N>}>@db")
        code, out, _ = lint(capsys, qpath, "--view", f"V1={vpath}")
        assert f"{vpath}:1:1:" in out
        assert "TSL301" in out

    def test_syntax_error_reported_as_tsl000(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :- <P a V@db")
        code, out, _ = lint(capsys, path)
        assert code == 2
        assert "[TSL000]" in out
        assert f"{path}:1:" in out
        assert "^" in out


class TestJsonOutput:
    def test_shape_and_span(self, write, capsys):
        path = write("q.tsl", "<f(P) x W> :- <P a V>@db")
        code, out, _ = lint(capsys, path, "--format", "json")
        assert code == 2
        payload = json.loads(out)
        assert payload["summary"]["error"] == 1
        (diag,) = [d for d in payload["diagnostics"]
                   if d["code"] == "TSL001"]
        assert diag["severity"] == "error"
        assert diag["file"] == path
        assert diag["span"] == {"line": 1, "column": 9,
                                "end_line": 1, "end_column": 10}

    def test_clean_json(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :- <P a V>@db AND <P b V>@db")
        code, out, _ = lint(capsys, path, "--format", "json")
        assert code == 0
        assert json.loads(out) == {
            "diagnostics": [],
            "summary": {"error": 0, "warning": 0, "info": 0}}


class TestDtdLinting:
    def test_dtd_enables_tsl201(self, write, capsys):
        qpath = write("q.tsl", "<f(P) x yes> :- <P p {<X junk V>}>@db")
        dtd = write("people.dtd", DTD_TEXT)
        code, out, _ = lint(capsys, qpath, "--dtd", dtd)
        assert "TSL201" in out

    def test_without_dtd_tsl201_is_silent(self, write, capsys):
        qpath = write("q.tsl", "<f(P) x yes> :- <P p {<X junk V>}>@db")
        _, out, _ = lint(capsys, qpath)
        assert "TSL201" not in out

    def test_lint_never_runs_the_rewriter(self, write, capsys,
                                          monkeypatch):
        import importlib

        rew_mod = importlib.import_module("repro.rewriting.rewriter")

        def boom(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("lint must not invoke the rewriter")

        monkeypatch.setattr(rew_mod, "rewrite", boom)
        monkeypatch.setattr(rew_mod, "find_all_rewritings", boom)
        qpath = write("q.tsl", "<f(P) x yes> :- <P p {<X junk V>}>@db")
        vpath = write("v.tsl", "<v(P) q V> :- <P p V>@db")
        dtd = write("people.dtd", DTD_TEXT)
        code, out, _ = lint(capsys, qpath, "--view", f"V1={vpath}",
                            "--dtd", dtd)
        assert "TSL201" in out


class TestOtherCommandsUseTheRenderer:
    def test_validate_failure_has_location_and_caret(self, write, capsys):
        path = write("q.tsl", "<f(P) x W> :- <P a V>@db")
        code = main(["validate", path])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        assert f"{path}:1:9:" in err
        assert "^" in err

    def test_syntax_failure_has_location_and_caret(self, write, capsys):
        path = write("q.tsl", "<f(P) x V> :-\n  <P a V>@@db")
        code = main(["validate", path])
        err = capsys.readouterr().err
        assert code == 2
        assert f"{path}:2:" in err
        assert "^" in err

    def test_bad_view_spec_message(self, write, capsys):
        qpath = write("q.tsl", "<f(P) x V> :- <P a V>@db")
        code = main(["rewrite", qpath, "--view", "nofile.tsl"])
        err = capsys.readouterr().err
        assert code == 2
        assert "NAME=FILE" in err
