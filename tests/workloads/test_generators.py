"""Tests for the synthetic workload generators."""

import pytest

from repro.oem import identical
from repro.tsl import evaluate, validate
from repro.workloads import (chain_database, chain_query, chain_view,
                             conference_query, conference_view,
                             fanout_probe_query, fanout_view,
                             generate_bibliography, generate_people,
                             k_conditions_database, k_conditions_query,
                             people_dtd, sample_query, star_database,
                             star_query, star_view, sigmod_97_query,
                             year_view, RandomOemConfig, RandomQueryConfig,
                             generate_random_database)


class TestBiblio:
    def test_deterministic_by_seed(self):
        a = generate_bibliography(20, seed=5)
        b = generate_bibliography(20, seed=5)
        assert identical(a, b)

    def test_different_seeds_differ(self):
        a = generate_bibliography(20, seed=1)
        b = generate_bibliography(20, seed=2)
        assert not identical(a, b)

    def test_publication_shape(self):
        db = generate_bibliography(10, seed=0)
        assert len(db.roots) == 10
        for pub in db.root_objects():
            labels = [c.label for c in pub.value]
            assert labels.count("title") == 1
            assert labels.count("year") == 1
            assert labels.count("booktitle") == 1
            assert 1 <= labels.count("author") <= 3

    def test_sigmod_fraction(self):
        db = generate_bibliography(200, seed=0, sigmod_fraction=1.0)
        q = conference_query("sigmod")
        assert len(evaluate(q, db).roots) == 200

    def test_standard_queries_validate(self):
        for query in (sigmod_97_query(), conference_query("vldb", 1998),
                      conference_view("sigmod", "v"),
                      year_view(1997, "y")):
            validate(query)

    def test_query_view_consistency(self):
        db = generate_bibliography(50, seed=9)
        all_sigmod = evaluate(conference_view("sigmod", "v"), db)
        only_97 = evaluate(conference_query("sigmod", 1997), db)
        assert len(only_97.roots) <= len(all_sigmod.roots)


class TestPeople:
    def test_dtd_conformance(self):
        db = generate_people(40, seed=1)
        dtd = people_dtd()
        for person in db.root_objects():
            counts = {}
            for child in person.value:
                counts[child.label] = counts.get(child.label, 0) + 1
            assert counts.get("name") == 1
            assert counts.get("phone") == 1
            for label, count in counts.items():
                if dtd.functional_child("p", label):
                    assert count <= 1

    def test_name_structure(self):
        db = generate_people(40, seed=2)
        for person in db.root_objects():
            [name] = person.subobjects("name")
            assert len(name.subobjects("last")) == 1
            assert len(name.subobjects("first")) == 1


class TestQuerygen:
    @pytest.mark.parametrize("depth", [1, 2, 5])
    def test_chain_query_matches_chain_database(self, depth):
        db = chain_database(depth, width=4)
        answer = evaluate(chain_query(depth), db)
        assert len(answer.roots) == 4

    def test_chain_view_validates(self):
        validate(chain_view(3))

    @pytest.mark.parametrize("branches", [1, 3])
    def test_star_query_matches_star_database(self, branches):
        db = star_database(branches, width=2)
        answer = evaluate(star_query(branches), db)
        assert len(answer.roots) == 2

    def test_star_distinct_labels(self):
        db = star_database(3, width=1, distinct_labels=True)
        answer = evaluate(star_query(3, distinct_labels=True), db)
        assert len(answer.roots) == 1

    def test_k_conditions_cross_product(self):
        db = k_conditions_database(2, width=3)
        answer = evaluate(k_conditions_query(2), db)
        # Heads are keyed on P1: 3 roots, each fusing the 3 P2 bindings
        # (1 h1-child + 3 h2-children).
        assert len(answer.roots) == 3
        for root in answer.root_objects():
            assert len(root.value) == 4

    def test_fanout_pair_validates(self):
        validate(fanout_view(3))
        validate(fanout_probe_query())


class TestRandom:
    def test_reproducible(self):
        cfg = RandomOemConfig()
        assert identical(generate_random_database(cfg, seed=4),
                         generate_random_database(cfg, seed=4))

    def test_dag_sharing(self):
        cfg = RandomOemConfig(share_probability=0.5, roots=4, max_depth=4)
        db = generate_random_database(cfg, seed=8)
        db.check_integrity()

    @pytest.mark.parametrize("seed", range(5))
    def test_sampled_queries_are_satisfiable(self, seed):
        db = generate_random_database(seed=seed)
        query = sample_query(db, seed=seed)
        validate(query)
        assert len(evaluate(query, db).roots) >= 1
