"""End-to-end tests for the TSIMMIS-style mediator (Figures 1-2, E11)."""

import pytest

from repro.errors import CapabilityError, MediatorError
from repro.mediator import (CapabilityView, CostModel, Mediator, Source,
                            plan_query, translate_to_native)
from repro.oem import build_database, identical, obj
from repro.tsl import evaluate, parse_query


def _biblio_source(name, pubs):
    db = build_database(name, [
        obj("pub", [obj("title", title), obj("conf", conf),
                    obj("year", year)])
        for title, conf, year in pubs
    ])
    return db


@pytest.fixture
def s1():
    """Supports only selections on year (the paper's running example)."""
    db = _biblio_source("s1", [
        ("views", "sigmod", 1997),
        ("cube", "icde", 1997),
        ("old", "sigmod", 1993),
    ])
    capability = CapabilityView.from_text("s1_by_year", """
        <v1(P) pub {<c1(P,L,W) L W>}> :-
            <P pub {<Y year $YEAR>}>@s1 AND <P pub {<X L W>}>@s1
    """)
    return Source("s1", db, [capability])


@pytest.fixture
def s2():
    """Supports only selections on conference."""
    db = _biblio_source("s2", [
        ("mediators", "sigmod", 1997),
        ("warehouse", "vldb", 1997),
    ])
    capability = CapabilityView.from_text("s2_by_conf", """
        <v2(P) pub {<c2(P,L,W) L W>}> :-
            <P pub {<C conf $CONF>}>@s2 AND <P pub {<X L W>}>@s2
    """)
    return Source("s2", db, [capability])


class TestSourceValidation:
    def test_name_mismatch_rejected(self):
        db = _biblio_source("other", [])
        with pytest.raises(MediatorError, match="named"):
            Source("s1", db, [])

    def test_foreign_capability_rejected(self, s1):
        foreign = CapabilityView.from_text(
            "bad", "<v(P) x V> :- <P a V>@elsewhere")
        with pytest.raises(MediatorError, match="other sources"):
            s1.add_capability(foreign)

    def test_capability_named(self, s1):
        assert s1.capability_named("s1_by_year").name == "s1_by_year"
        with pytest.raises(MediatorError):
            s1.capability_named("nope")


class TestCbrScenario:
    """The "SIGMOD 97" decomposition of Section 1."""

    def test_year_pushed_sigmod_filtered_locally(self, s1):
        mediator = Mediator(sources={"s1": s1})
        query = parse_query(
            "<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1 AND "
            "<P pub {<C conf sigmod>}>@s1")
        [plan] = mediator.plan(query)
        # The year selection ships to the source...
        assert "$YEAR=1997" in "".join(plan.capabilities)
        # ... and the SIGMOD filter stays in the mediator-side rewriting.
        assert "sigmod" in str(plan.query)
        answer = mediator.answer(query)
        assert len(answer.roots) == 1

    def test_answer_matches_direct_evaluation(self, s1):
        mediator = Mediator(sources={"s1": s1})
        query = parse_query(
            "<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1 AND "
            "<P pub {<C conf sigmod>}>@s1")
        direct = evaluate(query, s1.db)
        assert identical(direct, mediator.answer(query))

    def test_unanswerable_query(self, s1):
        mediator = Mediator(sources={"s1": s1})
        # No capability selects on title: no parameter binding possible.
        query = parse_query(
            "<f(P) hit yes> :- <P pub {<T title views>}>@s1")
        with pytest.raises(CapabilityError):
            mediator.plan(query)

    def test_explain_mentions_shipping(self, s1):
        mediator = Mediator(sources={"s1": s1})
        text = mediator.explain(
            "<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1")
        assert "ship" in text and "s1" in text

    def test_explain_unanswerable(self, s1):
        mediator = Mediator(sources={"s1": s1})
        text = mediator.explain(
            "<f(P) hit yes> :- <P pub {<T title views>}>@s1")
        assert text.startswith("unanswerable")


class TestMultiSource:
    def test_queries_decompose_per_source(self, s1, s2):
        mediator = Mediator(sources={"s1": s1, "s2": s2})
        query = parse_query(
            "<f(P,Q) pair yes> :- "
            "<P pub {<Y year 1997>}>@s1 AND "
            "<Q pub {<C conf sigmod>}>@s2")
        report = mediator.answer_with_report(query)
        assert report.source_queries == 2
        # 2 pubs from s1 in 1997 x 1 sigmod pub from s2.
        assert len(report.answer.roots) == 2

    def test_wrapper_stats_accumulate(self, s1):
        mediator = Mediator(sources={"s1": s1})
        query = parse_query(
            "<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1")
        mediator.answer(query)
        mediator.answer(query)
        assert mediator.wrappers["s1"].stats.queries_sent == 2


class TestIntegratedViews:
    def test_view_expansion(self, s1):
        mediator = Mediator(sources={"s1": s1})
        mediator.define_view("recent", """
            <rec(P) pub {<rc(P,L,W) L W>}> :-
                <P pub {<Y year 1997>}>@s1 AND <P pub {<X L W>}>@s1
        """)
        query = parse_query(
            "<f(P) hit yes> :- <rec(P) pub {<R1 conf sigmod>}>@recent")
        answer = mediator.answer(query)
        assert len(answer.roots) == 1

    def test_view_over_unknown_source_rejected(self, s1):
        mediator = Mediator(sources={"s1": s1})
        with pytest.raises(MediatorError, match="unknown sources"):
            mediator.define_view("bad", "<v(P) x V> :- <P a V>@nowhere")

    def test_duplicate_source_rejected(self, s1):
        mediator = Mediator(sources={"s1": s1})
        with pytest.raises(MediatorError, match="duplicate"):
            mediator.add_source(s1)


class TestCostModel:
    def test_selectivity_favors_selective_plans(self):
        model = CostModel()
        selective = parse_query("<v(P) x 1> :- <P a {<X b 7>}>@s")
        broad = parse_query("<v(P) x V> :- <P a {<X b V>}>@s")
        assert model.selectivity(selective) < model.selectivity(broad)

    def test_plan_cost_orders_plans(self, s1):
        plans = plan_query(
            parse_query("<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1"),
            {"s1": s1})
        costs = [plan.estimated_cost for plan in plans]
        assert costs == sorted(costs)

    def test_native_translation_mentions_selection(self, s1):
        plans = plan_query(
            parse_query("<f(P) hit yes> :- <P pub {<Y year 1997>}>@s1"),
            {"s1": s1})
        native = plans[0].native_queries[0]
        assert "year = 1997" in native.program
