"""Focused tests for the cost model and native-query rendering."""

import pytest

from repro.mediator import (CapabilityView, CostModel, PlainCapability,
                            Source, translate_to_native)
from repro.oem import build_database, obj
from repro.tsl import parse_query


def _plain(text, name="cap"):
    view = parse_query(text, name=name)
    capability = CapabilityView(name, view, frozenset())
    return PlainCapability(name, capability, view)


class TestCostModel:
    def test_more_leaf_constants_more_selective(self):
        model = CostModel()
        none = _plain("<v(P) x V> :- <P a {<X b V>}>@s")
        one = _plain("<v(P) x 1> :- <P a {<X b 7>}>@s")
        two = _plain("<v(P) x 1> :- <P a {<X b 7>}>@s AND "
                     "<P a {<Y c 8>}>@s")
        sel = model.selectivity
        assert sel(two.query) < sel(one.query) < sel(none.query)

    def test_estimate_scales_with_source_size(self):
        model = CostModel()
        small = Source("s", build_database("s", [obj("a", 1)]), [])
        large = Source("s", build_database(
            "s", [obj("a", i) for i in range(100)]), [])
        plain = _plain("<v(P) x V> :- <P a V>@s")
        assert model.estimate_access(plain, small) < \
            model.estimate_access(plain, large)

    def test_per_query_floor(self):
        model = CostModel(per_query_cost=42.0, per_object_cost=0.0)
        source = Source("s", build_database("s", [obj("a", 1)]), [])
        plain = _plain("<v(P) x V> :- <P a V>@s")
        assert model.estimate_access(plain, source) == 42.0

    def test_estimate_plan_sums_accesses(self):
        model = CostModel(per_query_cost=10.0, per_object_cost=0.0)
        source = Source("s", build_database("s", [obj("a", 1)]), [])
        plan_caps = {"c1": _plain("<v(P) x V> :- <P a V>@s", "c1"),
                     "c2": _plain("<w(P) y V> :- <P a V>@s", "c2")}
        assert model.estimate_plan(plan_caps, {"s": source}) == 20.0


class TestNativeRendering:
    def test_selection_rendered(self):
        native = translate_to_native(
            _plain("<v(P) x 1> :- <P pub {<Y year 1997>}>@s"))
        assert native.source == "s"
        assert "pub.year = 1997" in native.program

    def test_fetch_rendered_for_variables(self):
        native = translate_to_native(
            _plain("<v(P) x V> :- <P pub {<X title V>}>@s"))
        assert "FETCH pub.title" in native.program

    def test_exists_rendered_for_empty_set(self):
        native = translate_to_native(
            _plain("<v(P) x 1> :- <P pub {<X refs {}>}>@s"))
        assert "EXISTS pub.refs" in native.program

    def test_str(self):
        native = translate_to_native(
            _plain("<v(P) x 1> :- <P pub {<Y year 1997>}>@s"))
        assert str(native).startswith("[s]")
