"""Tests for capability descriptions and parameter binding."""

import pytest

from repro.errors import CapabilityError
from repro.logic.subst import Substitution
from repro.logic.terms import Constant, Variable
from repro.mediator import CapabilityView, parameters_of
from repro.tsl import parse_query


@pytest.fixture
def cap_year():
    return CapabilityView.from_text("by_year", """
        <v(P) pub {<c(P,L,W) L W>}> :-
            <P pub {<Y year $YEAR>}>@s1 AND <P pub {<X L W>}>@s1
    """)


class TestParameters:
    def test_parameters_detected(self, cap_year):
        assert cap_year.parameters == frozenset([Variable("$YEAR")])

    def test_parameters_of_plain_view(self):
        q = parse_query("<v(P) x V> :- <P a V>@s1")
        assert parameters_of(q) == frozenset()

    def test_sources(self, cap_year):
        assert cap_year.sources() == {"s1"}


class TestInstantiate:
    def test_binds_parameter(self, cap_year):
        plain = cap_year.instantiate(
            Substitution({Variable("$YEAR"): Constant(1997)}))
        assert plain.name == "by_year[$YEAR=1997]"
        assert "$YEAR" not in str(plain.query)
        assert "1997" in str(plain.query)

    def test_instance_names_deterministic(self, cap_year):
        bindings = Substitution({Variable("$YEAR"): Constant(1997)})
        assert cap_year.instantiate(bindings).name == \
            cap_year.instantiate(bindings).name

    def test_unbound_parameter_rejected(self, cap_year):
        with pytest.raises(CapabilityError, match="YEAR"):
            cap_year.instantiate(Substitution())

    def test_variable_bound_parameter_rejected(self, cap_year):
        with pytest.raises(CapabilityError):
            cap_year.instantiate(
                Substitution({Variable("$YEAR"): Variable("Z")}))

    def test_str(self, cap_year):
        rendered = str(cap_year)
        assert "by_year" in rendered and "$YEAR" in rendered
