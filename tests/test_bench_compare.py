"""benchmarks/compare.py: snapshot diffing and regression flagging."""

import json
import subprocess
import sys
from pathlib import Path

COMPARE = Path(__file__).parent.parent / "benchmarks" / "compare.py"


def snapshot(rows, name="end-to-end", rev="abc123"):
    return {"schema_version": 1, "generated": "2026-01-01T00:00:00+00:00",
            "git_rev": rev, "python": "3.12", "platform": "test",
            "benchmarks": [{"name": name, "title": "t", "seconds": 1.0,
                            "rows": rows}],
            "metrics": {"counters": {}, "histograms": {}}}


def run_compare(tmp_path, baseline, current, *extra):
    base = tmp_path / "base.json"
    curr = tmp_path / "curr.json"
    base.write_text(json.dumps(baseline))
    curr.write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(COMPARE), str(base), str(curr), *extra],
        capture_output=True, text=True)


class TestCompare:
    def test_no_change_reports_clean(self, tmp_path):
        rows = [{"scenario": "Q3", "seconds": 0.1, "tested": 1}]
        proc = run_compare(tmp_path, snapshot(rows), snapshot(rows))
        assert proc.returncode == 0
        assert "0 regression(s)" in proc.stdout

    def test_regression_flagged_beyond_threshold_and_floor(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.10}])
        curr = snapshot([{"scenario": "Q3", "seconds": 0.30}])
        proc = run_compare(tmp_path, base, curr)
        assert proc.returncode == 0  # warn-only by default
        assert "REGRESSION" in proc.stdout
        assert "1 regression(s)" in proc.stdout

    def test_fail_on_regression_exits_nonzero(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.10}])
        curr = snapshot([{"scenario": "Q3", "seconds": 0.30}])
        proc = run_compare(tmp_path, base, curr, "--fail-on-regression")
        assert proc.returncode == 1

    def test_noise_floor_suppresses_tiny_ratios(self, tmp_path):
        # 3x slower but only 2ms absolute: below the default 50ms floor.
        base = snapshot([{"scenario": "Q3", "seconds": 0.001}])
        curr = snapshot([{"scenario": "Q3", "seconds": 0.003}])
        proc = run_compare(tmp_path, base, curr, "--fail-on-regression")
        assert proc.returncode == 0
        assert "0 regression(s)" in proc.stdout

    def test_counter_fields_never_regress(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "tested": 1}])
        curr = snapshot([{"scenario": "Q3", "tested": 100}])
        proc = run_compare(tmp_path, base, curr, "--fail-on-regression")
        assert proc.returncode == 0

    def test_improvement_reported(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.50}])
        curr = snapshot([{"scenario": "Q3", "seconds": 0.10}])
        proc = run_compare(tmp_path, base, curr)
        assert "1 improvement(s)" in proc.stdout

    def test_missing_and_new_experiments_noted(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.1}], name="E10")
        curr = snapshot([{"scenario": "Q3", "seconds": 0.1}], name="E11")
        proc = run_compare(tmp_path, base, curr)
        assert "E10 missing" in proc.stdout
        assert "E11 new" in proc.stdout

    def test_schema_version_mismatch_rejected(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.1}])
        bad = dict(base, schema_version=99)
        proc = run_compare(tmp_path, base, bad)
        assert proc.returncode != 0
        assert "schema_version" in proc.stderr

    def test_json_report_written(self, tmp_path):
        base = snapshot([{"scenario": "Q3", "seconds": 0.10}])
        curr = snapshot([{"scenario": "Q3", "seconds": 0.30}])
        out = tmp_path / "diff.json"
        run_compare(tmp_path, base, curr, "--json", str(out))
        report = json.loads(out.read_text())
        assert report["regressions"] == 1
        field = report["experiments"][0]["rows"][0]["fields"][0]
        assert field["field"] == "seconds" and field["regressed"]


class TestBaselineSnapshot:
    def test_committed_baseline_is_loadable(self, tmp_path):
        baseline = (Path(__file__).parent.parent / "benchmarks" /
                    "baselines" / "BENCH_baseline.json")
        data = json.loads(baseline.read_text())
        assert data["schema_version"] == 1
        names = {b["name"] for b in data["benchmarks"]}
        assert {"end-to-end", "E10"} <= names
        # The baseline self-compares clean.
        proc = subprocess.run(
            [sys.executable, str(COMPARE), str(baseline), str(baseline),
             "--fail-on-regression"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 regression(s)" in proc.stdout
